//! Fig. 1 regeneration bench: the motivating reuse-vs-size comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_motivation");
    group.sample_size(20);
    group.bench_function("run", |b| {
        b.iter(|| black_box(isegen_eval::experiments::fig1::run()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
