//! §4.2 complexity bench: ISEGEN bi-partition runtime vs block size on
//! random DFGs — the O(n²) claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use isegen_core::{BlockContext, IoConstraints, Search, SearchConfig};
use isegen_ir::LatencyModel;
use isegen_workloads::{random_application, RandomWorkloadConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = LatencyModel::paper_default();
    let io = IoConstraints::new(4, 2);
    // a single trajectory isolates the per-pass complexity
    let search = Search::new(SearchConfig::new().with_restarts(1));
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for nodes in [50usize, 100, 200, 400, 800] {
        let app = random_application(&RandomWorkloadConfig {
            seed: nodes as u64,
            blocks: 1,
            ops_per_block: nodes,
            ..RandomWorkloadConfig::default()
        });
        let block = app.blocks()[0].clone();
        let ctx = BlockContext::new(&block, &model);
        group.throughput(Throughput::Elements(nodes as u64));
        group.bench_with_input(BenchmarkId::new("bipartition", nodes), &nodes, |b, _| {
            b.iter(|| black_box(search.run(&ctx, io).cut))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
