//! Fig. 7 regeneration bench: pattern extraction and node-disjoint
//! instance matching on the AES data-flow — the machinery behind the
//! reusability counts.

use criterion::{criterion_group, criterion_main, Criterion};
use isegen_core::{BlockContext, IoConstraints, Search};
use isegen_ir::LatencyModel;
use isegen_match::{find_disjoint_instances, Pattern};
use isegen_workloads::aes;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = LatencyModel::paper_default();
    let app = aes();
    let block = app.critical_block().expect("has blocks");
    let ctx = BlockContext::new(block, &model);
    let cut = Search::default().run(&ctx, IoConstraints::new(4, 2)).cut;
    assert!(!cut.is_empty());
    let pattern = Pattern::extract(block, cut.nodes());

    let mut group = c.benchmark_group("fig7_reuse");
    group.sample_size(10);
    group.bench_function("pattern_extract", |b| {
        b.iter(|| black_box(Pattern::extract(block, cut.nodes())))
    });
    group.bench_function("disjoint_instances_aes", |b| {
        b.iter(|| black_box(find_disjoint_instances(block, &pattern, None)))
    });
    group.bench_function("signature", |b| b.iter(|| black_box(pattern.signature())));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
