//! Gain-component ablation bench: bi-partition cost per disabled
//! component (quality numbers come from `isegen-eval --bin ablation`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isegen_core::{BlockContext, IoConstraints, Search, SearchConfig};
use isegen_eval::experiments::ablation::Variant;
use isegen_ir::LatencyModel;
use isegen_workloads::autcor00;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = LatencyModel::paper_default();
    let io = IoConstraints::new(4, 2);
    let app = autcor00();
    let block = app.critical_block().expect("has blocks");
    let ctx = BlockContext::new(block, &model);

    let mut group = c.benchmark_group("ablation");
    group.sample_size(20);
    for variant in Variant::ALL {
        let search = Search::new(SearchConfig::new().with_weights(variant.weights()));
        group.bench_with_input(
            BenchmarkId::new("autcor00", variant.label()),
            &search,
            |b, s| b.iter(|| black_box(s.run(&ctx, io).cut)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
