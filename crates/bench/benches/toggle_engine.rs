//! §4.3 micro-benchmarks: the incremental toggle engine against
//! from-scratch re-evaluation — the complexity contribution of the
//! paper's ΔI/ΔO addendum scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isegen_core::{BlockContext, Cut, GainCache, ToggleEngine};
use isegen_graph::NodeId;
use isegen_ir::LatencyModel;
use isegen_workloads::{random_application, RandomWorkloadConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = LatencyModel::paper_default();
    let mut group = c.benchmark_group("toggle_engine");
    group.sample_size(20);

    for nodes in [100usize, 400, 800] {
        let app = random_application(&RandomWorkloadConfig {
            seed: 7,
            blocks: 1,
            ops_per_block: nodes,
            ..RandomWorkloadConfig::default()
        });
        let block = app.blocks()[0].clone();
        let ctx = BlockContext::new(&block, &model);
        let eligible: Vec<NodeId> = ctx.eligible().iter().collect();
        let seq: Vec<NodeId> = (0..64).map(|i| eligible[i * 7 % eligible.len()]).collect();

        // incremental: 64 toggles with O(deg)/O(n/64) updates each
        group.bench_with_input(BenchmarkId::new("incremental64", nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut engine = ToggleEngine::new(&ctx);
                for &v in &seq {
                    engine.toggle(v);
                }
                black_box(engine.snapshot())
            })
        });
        // reference: the same 64 states re-derived from scratch each time
        group.bench_with_input(BenchmarkId::new("scratch64", nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut cut = isegen_graph::NodeSet::new(ctx.node_count());
                let mut last = None;
                for &v in &seq {
                    cut.toggle(v);
                    last = Some(Cut::evaluate(&ctx, cut.clone()));
                }
                black_box(last)
            })
        });
        // probe throughput: the inner-loop candidate evaluation
        group.bench_with_input(BenchmarkId::new("probe_all", nodes), &nodes, |b, _| {
            let mut engine = ToggleEngine::new(&ctx);
            for &v in seq.iter().take(8) {
                engine.toggle(v);
            }
            b.iter(|| {
                let mut acc = 0.0;
                for &v in &eligible {
                    acc += engine.probe(v).merit;
                }
                black_box(acc)
            })
        });
        // the real K-L inner loop: a full gain sweep between commits —
        // first with fresh probes every sweep …
        group.bench_with_input(BenchmarkId::new("probe_sweep", nodes), &nodes, |b, _| {
            b.iter(|| {
                let mut engine = ToggleEngine::new(&ctx);
                let mut acc = 0.0;
                for &v in seq.iter().take(16) {
                    for &u in &eligible {
                        acc += engine.probe(u).merit;
                    }
                    engine.toggle(v);
                }
                black_box(acc)
            })
        });
        // … then through the dirty-set gain cache (what bipartition runs)
        group.bench_with_input(
            BenchmarkId::new("probe_sweep_cached", nodes),
            &nodes,
            |b, _| {
                b.iter(|| {
                    let mut engine = ToggleEngine::new(&ctx);
                    let mut cache = GainCache::new(ctx.node_count());
                    let mut acc = 0.0;
                    for &v in seq.iter().take(16) {
                        for &u in &eligible {
                            acc += cache.probe(&engine, u).merit;
                        }
                        cache.commit(&mut engine, v);
                    }
                    black_box(acc)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
