//! Fig. 4 (left) regeneration bench: whole-application ISE generation
//! per algorithm on representative benchmarks. The speedup values
//! themselves come from `cargo run -p isegen-eval --bin fig4`; this
//! bench tracks the cost of regenerating them.

use criterion::{criterion_group, criterion_main, Criterion};
use isegen_baselines::{run_genetic, run_iterative, ExactConfig};
use isegen_bench::{bench_genetic, paper_ise_config};
use isegen_core::Generator;
use isegen_ir::LatencyModel;
use isegen_workloads::{autcor00, conven00, fft00};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = LatencyModel::paper_default();
    let config = paper_ise_config(false);
    let mut group = c.benchmark_group("fig4_speedup");
    group.sample_size(10);

    for (name, app) in [
        ("conven00", conven00()),
        ("autcor00", autcor00()),
        ("fft00", fft00()),
    ] {
        group.bench_function(format!("isegen/{name}"), |b| {
            b.iter(|| black_box(Generator::new(config).run(&app, &model)))
        });
        group.bench_function(format!("iterative/{name}"), |b| {
            b.iter(|| {
                black_box(run_iterative(
                    &app,
                    &model,
                    &config,
                    &ExactConfig::default(),
                ))
            })
        });
    }
    // the genetic baseline is slow; bench it on the smallest kernel only
    let app = conven00();
    group.bench_function("genetic/conven00", |b| {
        b.iter(|| black_box(run_genetic(&app, &model, &config, &bench_genetic())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
