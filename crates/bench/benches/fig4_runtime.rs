//! Fig. 4 (right) regeneration bench: single bi-partition runtime per
//! algorithm across the suite's block sizes — the log-scale runtime plot
//! of the paper.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isegen_baselines::{exact_single_cut, ExactConfig, GeneticFinder};
use isegen_bench::bench_genetic;
use isegen_core::{BlockContext, CutFinder, IoConstraints, Search};
use isegen_ir::LatencyModel;
use isegen_workloads::mediabench_eembc_suite;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = LatencyModel::paper_default();
    let io = IoConstraints::new(4, 2);
    let mut group = c.benchmark_group("fig4_runtime");
    group.sample_size(10);

    for spec in mediabench_eembc_suite() {
        let app = spec.application();
        let block = app.critical_block().expect("has blocks").clone();
        let nodes = spec.kernel_ops;
        let ctx = BlockContext::new(&block, &model);

        group.bench_with_input(BenchmarkId::new("isegen", nodes), &nodes, |b, _| {
            b.iter(|| black_box(Search::default().run(&ctx, io).cut))
        });
        // the exhaustive search explodes with size; keep it to small blocks
        if nodes <= 25 {
            group.bench_with_input(BenchmarkId::new("exact", nodes), &nodes, |b, _| {
                b.iter(|| black_box(exact_single_cut(&ctx, io, &ExactConfig::default(), None)))
            });
            group.bench_with_input(BenchmarkId::new("genetic", nodes), &nodes, |b, _| {
                b.iter(|| {
                    let mut finder = GeneticFinder::new(bench_genetic());
                    black_box(finder.find_cut(&ctx, io, None))
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
