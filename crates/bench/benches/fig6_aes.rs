//! Fig. 6 regeneration bench: AES ISE generation across the I/O sweep
//! (ISEGEN with reuse; the genetic point is benched once).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isegen_baselines::run_genetic;
use isegen_bench::bench_genetic;
use isegen_core::{Generator, IoConstraints, IseConfig};
use isegen_ir::LatencyModel;
use isegen_workloads::aes;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = LatencyModel::paper_default();
    let app = aes();
    let mut group = c.benchmark_group("fig6_aes");
    group.sample_size(10);

    for (i, o) in [(2u32, 1u32), (4, 2), (8, 4)] {
        let config = IseConfig {
            io: IoConstraints::new(i, o),
            max_ises: 4,
            reuse_matching: true,
        };
        group.bench_with_input(
            BenchmarkId::new("isegen", format!("({i},{o})")),
            &config,
            |b, cfg| b.iter(|| black_box(Generator::new(*cfg).run(&app, &model))),
        );
    }
    let config = IseConfig {
        io: IoConstraints::new(4, 2),
        max_ises: 1,
        reuse_matching: true,
    };
    group.bench_function("genetic/(4,2)", |b| {
        b.iter(|| black_box(run_genetic(&app, &model, &config, &bench_genetic())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
