//! Shared helpers for the Criterion benchmark suite.
//!
//! Each bench target regenerates one paper artefact (see `benches/`);
//! this crate only hosts small utilities so the benches stay terse.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use isegen_core::{IoConstraints, IseConfig};

/// The paper's headline ISE configuration: I/O `(4,2)`, `N_ISE = 4`.
pub fn paper_ise_config(reuse: bool) -> IseConfig {
    IseConfig {
        io: IoConstraints::new(4, 2),
        max_ises: 4,
        reuse_matching: reuse,
    }
}

/// A genetic configuration small enough for benchmarking loops while
/// keeping the algorithm's character (population search with penalties).
pub fn bench_genetic() -> isegen_baselines::GeneticConfig {
    isegen_baselines::GeneticConfig {
        population: 32,
        generations: 60,
        ..isegen_baselines::GeneticConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_sane() {
        let c = paper_ise_config(true);
        assert_eq!(c.max_ises, 4);
        assert!(c.reuse_matching);
        assert!(bench_genetic().population > 0);
    }
}
