//! AES-128 encryption data-flow (byte-sliced), the paper's large
//! cryptographic workload.

use crate::util::assemble;
use isegen_graph::NodeId;
use isegen_ir::{Application, BlockBuilder, Opcode};

/// AddRoundKey: XOR every state byte with a fresh round-key input.
fn add_round_key(b: &mut BlockBuilder, state: &mut [NodeId; 16], round: usize) {
    for (i, s) in state.iter_mut().enumerate() {
        let k = b.input(format!("rk{round}_{i}"));
        *s = b.op(Opcode::Xor, &[*s, k]).expect("arity");
    }
}

/// SubBytes: S-box substitution on every state byte (combinational
/// [`Opcode::SBox`] — the paper excludes memory from AFUs, so the lookup
/// is modelled as its combinational equivalent).
fn sub_bytes(b: &mut BlockBuilder, state: &mut [NodeId; 16]) {
    for s in state.iter_mut() {
        *s = b.op(Opcode::SBox, &[*s]).expect("arity");
    }
}

/// ShiftRows: pure wiring (row `r` rotates left by `r`); no operations.
fn shift_rows(state: &mut [NodeId; 16]) {
    // state[r + 4c] is row r, column c (column-major, FIPS-197 layout)
    let old = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = old[r + 4 * ((c + r) % 4)];
        }
    }
}

/// MixColumns on one column: the standard xtime formulation,
/// `out_i = b_i ⊕ t ⊕ xtime(b_i ⊕ b_{i+1})` with `t = b0⊕b1⊕b2⊕b3`.
/// 19 operations per column — the recurring cluster of the paper's
/// reusability study.
fn mix_column(b: &mut BlockBuilder, col: [NodeId; 4]) -> [NodeId; 4] {
    let t01 = b.op(Opcode::Xor, &[col[0], col[1]]).expect("arity");
    let t23 = b.op(Opcode::Xor, &[col[2], col[3]]).expect("arity");
    let t = b.op(Opcode::Xor, &[t01, t23]).expect("arity");
    let mut out = [col[0]; 4];
    for i in 0..4 {
        let u = b
            .op(Opcode::Xor, &[col[i], col[(i + 1) % 4]])
            .expect("arity");
        let x = b.op(Opcode::Xtime, &[u]).expect("arity");
        let v = b.op(Opcode::Xor, &[t, x]).expect("arity");
        out[i] = b.op(Opcode::Xor, &[col[i], v]).expect("arity");
    }
    out
}

fn mix_columns(b: &mut BlockBuilder, state: &mut [NodeId; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        let out = mix_column(b, col);
        state[4 * c..4 * c + 4].copy_from_slice(&out);
    }
}

/// `aes` — a full AES-128 encryption data-flow: initial AddRoundKey, six
/// full rounds (SubBytes → ShiftRows → MixColumns → AddRoundKey) and the
/// final round (SubBytes → ShiftRows → AddRoundKey).
///
/// Critical block: **696 operations** (paper §5: "its critical basic
/// block contains 696 nodes with a symmetric structure"):
/// `16 + 6·(16+76+16) + (16+16) = 696`. Round keys are live-in inputs
/// (the key schedule runs outside the block, as it does in unrolled AES
/// implementations).
///
/// The structure is deliberately regular: every round repeats the same
/// per-column MixColumns network (24 instances overall) and the same
/// per-byte SubBytes/AddRoundKey lanes — the regularity the paper's
/// Fig. 7 measures.
pub fn aes() -> Application {
    let mut b = BlockBuilder::new("aes_kernel").frequency(20_000);
    let mut state: [NodeId; 16] = std::array::from_fn(|i| b.input(format!("pt{i}")));
    add_round_key(&mut b, &mut state, 0);
    for round in 1..=6 {
        sub_bytes(&mut b, &mut state);
        shift_rows(&mut state);
        mix_columns(&mut b, &mut state);
        add_round_key(&mut b, &mut state, round);
    }
    sub_bytes(&mut b, &mut state);
    shift_rows(&mut state);
    add_round_key(&mut b, &mut state, 7);
    debug_assert_eq!(b.operation_count(), 696);
    assemble("aes", b.build().expect("non-empty"), 0.80)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::LatencyModel;

    #[test]
    fn critical_block_is_696_ops() {
        let app = aes();
        let kernel = app.critical_block().unwrap();
        assert_eq!(kernel.operation_count(), 696);
        assert_eq!(kernel.name(), "aes_kernel");
    }

    #[test]
    fn structure_is_all_eligible() {
        // AES has no memory ops; every operation can join a cut.
        let app = aes();
        let kernel = app.critical_block().unwrap();
        assert_eq!(kernel.eligible_nodes().len(), 696);
    }

    #[test]
    fn opcode_mix_matches_aes() {
        let app = aes();
        let kernel = app.critical_block().unwrap();
        let count = |oc: Opcode| {
            kernel
                .dag()
                .nodes()
                .filter(|(_, op)| op.opcode() == oc)
                .count()
        };
        // 16 sboxes per SubBytes, 7 SubBytes... no: 6 rounds + final = 7
        assert_eq!(count(Opcode::SBox), 7 * 16);
        // 24 mix-columns × 4 xtimes
        assert_eq!(count(Opcode::Xtime), 24 * 4);
        // the rest are xors
        assert_eq!(count(Opcode::Xor), 696 - 7 * 16 - 24 * 4);
    }

    #[test]
    fn hot_fraction_is_dominant() {
        let app = aes();
        let model = LatencyModel::paper_default();
        let kernel = app.critical_block().unwrap();
        let hot = kernel.frequency() * kernel.software_latency(&model);
        let total = app.total_software_latency(&model);
        let fraction = hot as f64 / total as f64;
        assert!((fraction - 0.8).abs() < 0.05, "hot fraction {fraction}");
    }
}
