//! Cryptographic workloads: byte-sliced AES encryption data-flows (the
//! paper's 696-op reduced block plus full-round AES-128/AES-256 with
//! their key schedules) and the SHA-256 compression function.

use crate::util::{assemble, assemble_multi, xor3};
use isegen_graph::NodeId;
use isegen_ir::{Application, BasicBlock, BlockBuilder, Opcode};

/// AddRoundKey: XOR every state byte with a round-key byte. When
/// `round_keys` is `None` the key bytes are fresh live-in inputs (the
/// key schedule runs outside the block); otherwise they come from the
/// given in-block values.
fn add_round_key(
    b: &mut BlockBuilder,
    state: &mut [NodeId; 16],
    round: usize,
    round_keys: Option<&[NodeId; 16]>,
) {
    for (i, s) in state.iter_mut().enumerate() {
        let k = match round_keys {
            Some(rk) => rk[i],
            None => b.input(format!("rk{round}_{i}")),
        };
        *s = b.op(Opcode::Xor, &[*s, k]).expect("arity");
    }
}

/// SubBytes: S-box substitution on every state byte (combinational
/// [`Opcode::SBox`] — the paper excludes memory from AFUs, so the lookup
/// is modelled as its combinational equivalent).
fn sub_bytes(b: &mut BlockBuilder, state: &mut [NodeId; 16]) {
    for s in state.iter_mut() {
        *s = b.op(Opcode::SBox, &[*s]).expect("arity");
    }
}

/// ShiftRows: pure wiring (row `r` rotates left by `r`); no operations.
fn shift_rows(state: &mut [NodeId; 16]) {
    // state[r + 4c] is row r, column c (column-major, FIPS-197 layout)
    let old = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = old[r + 4 * ((c + r) % 4)];
        }
    }
}

/// MixColumns on one column: the standard xtime formulation,
/// `out_i = b_i ⊕ t ⊕ xtime(b_i ⊕ b_{i+1})` with `t = b0⊕b1⊕b2⊕b3`.
/// 19 operations per column — the recurring cluster of the paper's
/// reusability study.
fn mix_column(b: &mut BlockBuilder, col: [NodeId; 4]) -> [NodeId; 4] {
    let t01 = b.op(Opcode::Xor, &[col[0], col[1]]).expect("arity");
    let t23 = b.op(Opcode::Xor, &[col[2], col[3]]).expect("arity");
    let t = b.op(Opcode::Xor, &[t01, t23]).expect("arity");
    let mut out = [col[0]; 4];
    for i in 0..4 {
        let u = b
            .op(Opcode::Xor, &[col[i], col[(i + 1) % 4]])
            .expect("arity");
        let x = b.op(Opcode::Xtime, &[u]).expect("arity");
        let v = b.op(Opcode::Xor, &[t, x]).expect("arity");
        out[i] = b.op(Opcode::Xor, &[col[i], v]).expect("arity");
    }
    out
}

fn mix_columns(b: &mut BlockBuilder, state: &mut [NodeId; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[4 * c + 1],
            state[4 * c + 2],
            state[4 * c + 3],
        ];
        let out = mix_column(b, col);
        state[4 * c..4 * c + 4].copy_from_slice(&out);
    }
}

/// Builds an AES encryption kernel with `rounds` AddRoundKey'd rounds
/// after the initial whitening (the last round omits MixColumns).
/// Operation count: `16 + (rounds − 1)·108 + 32`.
fn aes_encrypt_kernel(name: &str, rounds: usize, freq: u64) -> BasicBlock {
    let mut b = BlockBuilder::new(name).frequency(freq);
    let mut state: [NodeId; 16] = std::array::from_fn(|i| b.input(format!("pt{i}")));
    add_round_key(&mut b, &mut state, 0, None);
    for round in 1..rounds {
        sub_bytes(&mut b, &mut state);
        shift_rows(&mut state);
        mix_columns(&mut b, &mut state);
        add_round_key(&mut b, &mut state, round, None);
    }
    sub_bytes(&mut b, &mut state);
    shift_rows(&mut state);
    add_round_key(&mut b, &mut state, rounds, None);
    debug_assert_eq!(b.operation_count(), 16 + (rounds - 1) * 108 + 32);
    b.build().expect("non-empty")
}

/// One byte-sliced key-expansion round: `g` on the last word (RotWord is
/// wiring, SubWord is 4 S-boxes, Rcon is one XOR into byte 0), then four
/// chained word XORs. 21 operations.
fn key_expand_g_round(
    b: &mut BlockBuilder,
    words: &mut [[NodeId; 4]; 4],
    tail: [NodeId; 4],
    round: usize,
) {
    let rot = [tail[1], tail[2], tail[3], tail[0]];
    let mut g: [NodeId; 4] = std::array::from_fn(|i| b.op(Opcode::SBox, &[rot[i]]).expect("arity"));
    let rcon = b.input(format!("rcon{round}"));
    g[0] = b.op(Opcode::Xor, &[g[0], rcon]).expect("arity");
    chain_word_xors(b, words, g);
}

/// The AES-256 `h` variant: SubWord without rotation or Rcon, then the
/// four chained word XORs. 20 operations.
fn key_expand_h_round(b: &mut BlockBuilder, words: &mut [[NodeId; 4]; 4], tail: [NodeId; 4]) {
    let h: [NodeId; 4] = std::array::from_fn(|i| b.op(Opcode::SBox, &[tail[i]]).expect("arity"));
    chain_word_xors(b, words, h);
}

/// `w'_0 = w_0 ⊕ f`, `w'_j = w_j ⊕ w'_{j−1}` — 16 XORs updating the
/// four-word group in place.
fn chain_word_xors(b: &mut BlockBuilder, words: &mut [[NodeId; 4]; 4], f: [NodeId; 4]) {
    let mut carry = f;
    for word in words.iter_mut() {
        for (byte, c) in word.iter_mut().zip(carry.iter()) {
            *byte = b.op(Opcode::Xor, &[*byte, *c]).expect("arity");
        }
        carry = *word;
    }
}

/// AES-128 key schedule as a data-flow block: 10 expansion rounds over
/// the four key words. 10 × 21 = **210 operations**.
fn aes128_key_schedule(freq: u64) -> BasicBlock {
    let mut b = BlockBuilder::new("aes128_keysched").frequency(freq);
    let mut words: [[NodeId; 4]; 4] =
        std::array::from_fn(|w| std::array::from_fn(|i| b.input(format!("key{}", 4 * w + i))));
    for round in 1..=10 {
        let tail = words[3];
        key_expand_g_round(&mut b, &mut words, tail, round);
    }
    for word in &words {
        for &byte in word {
            b.live_out(byte).expect("in-block id");
        }
    }
    debug_assert_eq!(b.operation_count(), 210);
    b.build().expect("non-empty")
}

/// AES-256 key schedule: the eight key words expand through alternating
/// `g` and `h` rounds (7 of each kind minus the final `h`):
/// 7 × 21 + 6 × 20 = **267 operations**.
fn aes256_key_schedule(freq: u64) -> BasicBlock {
    let mut b = BlockBuilder::new("aes256_keysched").frequency(freq);
    let mut lo: [[NodeId; 4]; 4] =
        std::array::from_fn(|w| std::array::from_fn(|i| b.input(format!("key{}", 4 * w + i))));
    let mut hi: [[NodeId; 4]; 4] =
        std::array::from_fn(|w| std::array::from_fn(|i| b.input(format!("key{}", 16 + 4 * w + i))));
    for round in 1..=7 {
        let tail = hi[3];
        key_expand_g_round(&mut b, &mut lo, tail, round);
        if round < 7 {
            let tail = lo[3];
            key_expand_h_round(&mut b, &mut hi, tail);
        }
    }
    for word in lo.iter().chain(hi.iter()) {
        for &byte in word {
            b.live_out(byte).expect("in-block id");
        }
    }
    debug_assert_eq!(b.operation_count(), 7 * 21 + 6 * 20);
    b.build().expect("non-empty")
}

/// `aes` — the paper's AES workload: initial AddRoundKey, six full
/// rounds (SubBytes → ShiftRows → MixColumns → AddRoundKey) and the
/// final round (SubBytes → ShiftRows → AddRoundKey).
///
/// Critical block: **696 operations** (paper §5: "its critical basic
/// block contains 696 nodes with a symmetric structure"):
/// `16 + 6·(16+76+16) + (16+16) = 696`. Round keys are live-in inputs
/// (the key schedule runs outside the block, as it does in unrolled AES
/// implementations).
///
/// The structure is deliberately regular: every round repeats the same
/// per-column MixColumns network (24 instances overall) and the same
/// per-byte SubBytes/AddRoundKey lanes — the regularity the paper's
/// Fig. 7 measures.
pub fn aes() -> Application {
    let kernel = aes_encrypt_kernel("aes_kernel", 7, 20_000);
    assemble("aes", kernel, 0.80)
}

/// `aes128` — the **full ten-round** FIPS-197 AES-128 encryption
/// data-flow: initial AddRoundKey, nine full rounds, final round without
/// MixColumns. Critical block: `16 + 9·108 + 32` = **1020 operations**,
/// the same symmetric structure as [`aes`] at production scale. The
/// application also carries the 210-op key-schedule block (run once per
/// key, so at much lower frequency).
pub fn aes128() -> Application {
    let kernel = aes_encrypt_kernel("aes128_kernel", 10, 20_000);
    let keysched = aes128_key_schedule(200);
    assemble_multi("aes128", kernel, 0.80, vec![keysched])
}

/// `aes256` — full **fourteen-round** AES-256 encryption: critical
/// block `16 + 13·108 + 32` = **1452 operations**, plus the 267-op
/// AES-256 key-schedule block.
pub fn aes256() -> Application {
    let kernel = aes_encrypt_kernel("aes256_kernel", 14, 16_000);
    let keysched = aes256_key_schedule(160);
    assemble_multi("aes256", kernel, 0.80, vec![keysched])
}

/// Rotate-right modelled structurally as a rotate with the amount as a
/// live-in constant (our IR has one rotate opcode; the distinction is
/// wiring, not structure).
fn rotr(b: &mut BlockBuilder, x: NodeId, amount: NodeId) -> NodeId {
    b.op(Opcode::RotL, &[x, amount]).expect("arity")
}

/// `sha256` — the full 64-round SHA-256 compression function with its
/// message schedule, fully unrolled:
///
/// * message schedule, rounds 16–63: `w_i = w_{i−16} + σ0(w_{i−15}) +
///   w_{i−7} + σ1(w_{i−2})`, 13 ops per word → 48 × 13 = 624;
/// * 64 compression rounds: Σ1/Ch/Σ0/Maj plus the working-variable
///   update, 26 ops per round → 64 × 26 = 1664;
/// * final digest feedback: 8 adds.
///
/// Critical block: **2296 operations** — the corpus's largest real
/// kernel, long serial chains (the a–h recurrence) interleaved with wide
/// parallel mixers, the opposite shape of AES's shallow symmetric
/// rounds.
pub fn sha256() -> Application {
    let mut b = BlockBuilder::new("sha256_kernel").frequency(12_000);
    // rotation / shift amounts as shared live-in constants
    let r = |b: &mut BlockBuilder, n: u32| b.input(format!("r{n}"));
    let (r2, r6, r7) = (r(&mut b, 2), r(&mut b, 6), r(&mut b, 7));
    let (r11, r13, r17) = (r(&mut b, 11), r(&mut b, 13), r(&mut b, 17));
    let (r18, r19, r22, r25) = (r(&mut b, 18), r(&mut b, 19), r(&mut b, 22), r(&mut b, 25));
    let (s3, s10) = (b.input("s3"), b.input("s10"));

    // message schedule
    let mut w: Vec<NodeId> = (0..16).map(|i| b.input(format!("w{i}"))).collect();
    for i in 16..64 {
        let x15 = w[i - 15];
        let a = rotr(&mut b, x15, r7);
        let c = rotr(&mut b, x15, r18);
        let d = b.op(Opcode::Shr, &[x15, s3]).expect("arity");
        let sigma0 = xor3(&mut b, a, c, d);
        let x2 = w[i - 2];
        let a = rotr(&mut b, x2, r17);
        let c = rotr(&mut b, x2, r19);
        let d = b.op(Opcode::Shr, &[x2, s10]).expect("arity");
        let sigma1 = xor3(&mut b, a, c, d);
        let t = b.op(Opcode::Add, &[w[i - 16], sigma0]).expect("arity");
        let t = b.op(Opcode::Add, &[t, w[i - 7]]).expect("arity");
        let wi = b.op(Opcode::Add, &[t, sigma1]).expect("arity");
        w.push(wi);
    }

    // compression rounds
    let init: [NodeId; 8] = std::array::from_fn(|i| b.input(format!("h{i}_in")));
    let [mut a, mut bb, mut c, mut d, mut e, mut f, mut g, mut h] = init;
    for (i, &wi) in w.iter().enumerate() {
        let k = b.input(format!("k{i}"));
        // Σ1(e), Ch(e,f,g)
        let x = rotr(&mut b, e, r6);
        let y = rotr(&mut b, e, r11);
        let z = rotr(&mut b, e, r25);
        let big_sigma1 = xor3(&mut b, x, y, z);
        let ef = b.op(Opcode::And, &[e, f]).expect("arity");
        let ne = b.op(Opcode::Not, &[e]).expect("arity");
        let ng = b.op(Opcode::And, &[ne, g]).expect("arity");
        let ch = b.op(Opcode::Xor, &[ef, ng]).expect("arity");
        let t1 = b.op(Opcode::Add, &[h, big_sigma1]).expect("arity");
        let t1 = b.op(Opcode::Add, &[t1, ch]).expect("arity");
        let t1 = b.op(Opcode::Add, &[t1, k]).expect("arity");
        let t1 = b.op(Opcode::Add, &[t1, wi]).expect("arity");
        // Σ0(a), Maj(a,b,c)
        let x = rotr(&mut b, a, r2);
        let y = rotr(&mut b, a, r13);
        let z = rotr(&mut b, a, r22);
        let big_sigma0 = xor3(&mut b, x, y, z);
        let ab = b.op(Opcode::And, &[a, bb]).expect("arity");
        let ac = b.op(Opcode::And, &[a, c]).expect("arity");
        let bc = b.op(Opcode::And, &[bb, c]).expect("arity");
        let maj = xor3(&mut b, ab, ac, bc);
        let t2 = b.op(Opcode::Add, &[big_sigma0, maj]).expect("arity");
        h = g;
        g = f;
        f = e;
        e = b.op(Opcode::Add, &[d, t1]).expect("arity");
        d = c;
        c = bb;
        bb = a;
        a = b.op(Opcode::Add, &[t1, t2]).expect("arity");
    }

    // digest feedback
    for (i, v) in [a, bb, c, d, e, f, g, h].into_iter().enumerate() {
        let out = b.op(Opcode::Add, &[init[i], v]).expect("arity");
        b.live_out(out).expect("in-block id");
    }
    debug_assert_eq!(b.operation_count(), 48 * 13 + 64 * 26 + 8);
    assemble("sha256", b.build().expect("non-empty"), 0.85)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::LatencyModel;

    #[test]
    fn critical_block_is_696_ops() {
        let app = aes();
        let kernel = app.critical_block().unwrap();
        assert_eq!(kernel.operation_count(), 696);
        assert_eq!(kernel.name(), "aes_kernel");
    }

    #[test]
    fn structure_is_all_eligible() {
        // AES has no memory ops; every operation can join a cut.
        let app = aes();
        let kernel = app.critical_block().unwrap();
        assert_eq!(kernel.eligible_nodes().len(), 696);
    }

    #[test]
    fn opcode_mix_matches_aes() {
        let app = aes();
        let kernel = app.critical_block().unwrap();
        let count = |oc: Opcode| {
            kernel
                .dag()
                .nodes()
                .filter(|(_, op)| op.opcode() == oc)
                .count()
        };
        // 16 sboxes per SubBytes, 7 SubBytes... no: 6 rounds + final = 7
        assert_eq!(count(Opcode::SBox), 7 * 16);
        // 24 mix-columns × 4 xtimes
        assert_eq!(count(Opcode::Xtime), 24 * 4);
        // the rest are xors
        assert_eq!(count(Opcode::Xor), 696 - 7 * 16 - 24 * 4);
    }

    #[test]
    fn hot_fraction_is_dominant() {
        let app = aes();
        let model = LatencyModel::paper_default();
        let kernel = app.critical_block().unwrap();
        let hot = kernel.frequency() * kernel.software_latency(&model);
        let total = app.total_software_latency(&model);
        let fraction = hot as f64 / total as f64;
        assert!((fraction - 0.8).abs() < 0.05, "hot fraction {fraction}");
    }

    #[test]
    fn full_round_variants_hit_fips_sizes() {
        let app = aes128();
        let kernel = app.critical_block().unwrap();
        assert_eq!(kernel.operation_count(), 1020);
        assert_eq!(kernel.name(), "aes128_kernel");
        let keysched = app.block_by_name("aes128_keysched").unwrap();
        assert_eq!(keysched.operation_count(), 210);

        let app = aes256();
        let kernel = app.critical_block().unwrap();
        assert_eq!(kernel.operation_count(), 1452);
        let keysched = app.block_by_name("aes256_keysched").unwrap();
        assert_eq!(keysched.operation_count(), 267);
    }

    #[test]
    fn full_round_sbox_counts_match_round_structure() {
        // 10 rounds of SubBytes in the encrypt block, 10 SubWords in the
        // key schedule.
        let app = aes128();
        let count_sbox = |name: &str| {
            app.block_by_name(name)
                .unwrap()
                .dag()
                .nodes()
                .filter(|(_, op)| op.opcode() == Opcode::SBox)
                .count()
        };
        assert_eq!(count_sbox("aes128_kernel"), 10 * 16);
        assert_eq!(count_sbox("aes128_keysched"), 10 * 4);
    }

    #[test]
    fn sha256_is_the_largest_real_kernel() {
        let app = sha256();
        let kernel = app.critical_block().unwrap();
        assert_eq!(kernel.operation_count(), 2296);
        // no memory traffic: the whole round function is combinational
        assert_eq!(kernel.eligible_nodes().len(), 2296);
        let adds = kernel
            .dag()
            .nodes()
            .filter(|(_, op)| op.opcode() == Opcode::Add)
            .count();
        // 3 schedule adds per derived word, 7 per round (four t1 adds,
        // t2, e, a), 8 digest adds
        assert_eq!(adds, 48 * 3 + 64 * 7 + 8);
    }
}
