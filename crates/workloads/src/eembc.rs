//! EEMBC-derived kernels: `conven00`, `fbital00`, `viterb00`, `autcor00`,
//! `fft00`, `fir00`, `idctrn01`.

use crate::util::{assemble, butterfly, clamp, mac_chain};
use isegen_graph::NodeId;
use isegen_ir::{Application, BlockBuilder, Opcode};

/// `conven00` — convolutional encoder (EEMBC telecom). Critical block:
/// **6 operations** (paper Fig. 4): the tap-XOR network producing one
/// encoded symbol from the shift register.
pub fn conven00() -> Application {
    let mut b = BlockBuilder::new("conven00_kernel").frequency(120_000);
    let sr = b.input("shift_reg");
    let k1 = b.input("tap1");
    let k2 = b.input("tap2");
    let one = b.input("mask1");
    // g0 = parity of taps {0, k1, k2}
    let t1 = b.op(Opcode::Shr, &[sr, k1]).expect("arity");
    let x1 = b.op(Opcode::Xor, &[sr, t1]).expect("arity");
    let t2 = b.op(Opcode::Shr, &[sr, k2]).expect("arity");
    let x2 = b.op(Opcode::Xor, &[x1, t2]).expect("arity");
    let bit = b.op(Opcode::And, &[x2, one]).expect("arity");
    b.op(Opcode::Shl, &[bit, one]).expect("arity");
    debug_assert_eq!(b.operation_count(), 6);
    assemble("conven00", b.build().expect("non-empty"), 0.45)
}

/// `fbital00` — DSL bit allocation (EEMBC telecom). Critical block:
/// **20 operations**: four identical water-filling carrier updates of
/// five operations each — a regular structure with four reusable
/// instances.
pub fn fbital00() -> Application {
    let mut b = BlockBuilder::new("fbital00_kernel").frequency(60_000);
    let step = b.input("step");
    let cap_lo = b.input("cap_lo");
    let cap_hi = b.input("cap_hi");
    let mut total = b.input("total_in");
    for k in 0..4 {
        let gain = b.input(format!("gain{k}"));
        let noise = b.input(format!("noise{k}"));
        let margin = b.op(Opcode::Sub, &[gain, noise]).expect("arity");
        let bits = b.op(Opcode::Sar, &[margin, step]).expect("arity");
        let lo = b.op(Opcode::Max, &[bits, cap_lo]).expect("arity");
        let alloc = b.op(Opcode::Min, &[lo, cap_hi]).expect("arity");
        total = b.op(Opcode::Add, &[total, alloc]).expect("arity");
    }
    debug_assert_eq!(b.operation_count(), 20);
    assemble("fbital00", b.build().expect("non-empty"), 0.40)
}

/// `viterb00` — Viterbi decoder (EEMBC telecom). Critical block:
/// **23 operations**: four add-compare-select butterflies plus the path
/// metric normalisation tail.
pub fn viterb00() -> Application {
    let mut b = BlockBuilder::new("viterb00_kernel").frequency(80_000);
    let mut survivors: Vec<NodeId> = Vec::new();
    for k in 0..4 {
        let pm0 = b.input(format!("pm{k}a"));
        let pm1 = b.input(format!("pm{k}b"));
        let bm0 = b.input(format!("bm{k}a"));
        let bm1 = b.input(format!("bm{k}b"));
        // ACS: two candidate metrics, keep the smaller, remember both.
        let c0 = b.op(Opcode::Add, &[pm0, bm0]).expect("arity");
        let c1 = b.op(Opcode::Add, &[pm1, bm1]).expect("arity");
        let best = b.op(Opcode::Min, &[c0, c1]).expect("arity");
        let worst = b.op(Opcode::Max, &[c0, c1]).expect("arity");
        let decision = b.op(Opcode::Sub, &[worst, best]).expect("arity");
        b.live_out(decision).expect("in-block id");
        survivors.push(best);
    }
    // normalisation floor: running minimum of the four survivors
    let m01 = b
        .op(Opcode::Min, &[survivors[0], survivors[1]])
        .expect("arity");
    let m23 = b
        .op(Opcode::Min, &[survivors[2], survivors[3]])
        .expect("arity");
    let floor = b.op(Opcode::Min, &[m01, m23]).expect("arity");
    b.live_out(floor).expect("in-block id");
    for &s in &survivors {
        b.live_out(s).expect("in-block id");
    }
    debug_assert_eq!(b.operation_count(), 4 * 5 + 3);
    assemble("viterb00", b.build().expect("non-empty"), 0.55)
}

/// `autcor00` — fixed-point autocorrelation (EEMBC auto). Critical block:
/// **25 operations**: two parallel multiply-accumulate chains combined at
/// the end — the archetypal MAC-rich kernel (and, being two independent
/// subgraphs, a showcase for disconnected cuts).
pub fn autcor00() -> Application {
    let mut b = BlockBuilder::new("autcor00_kernel").frequency(100_000);
    let zero = b.input("acc_in");
    let mut chains: Vec<NodeId> = Vec::new();
    for c in 0..2 {
        let mut acc = zero;
        for i in 0..6 {
            let x = b.input(format!("x{c}_{i}"));
            let y = b.input(format!("y{c}_{i}"));
            let p = b.op(Opcode::Mul, &[x, y]).expect("arity");
            acc = b.op(Opcode::Add, &[acc, p]).expect("arity");
        }
        chains.push(acc);
    }
    b.op(Opcode::Add, &[chains[0], chains[1]]).expect("arity");
    debug_assert_eq!(b.operation_count(), 2 * 12 + 1);
    assemble("autcor00", b.build().expect("non-empty"), 0.85)
}

/// `fft00` — decimation-in-time FFT (EEMBC auto). Critical block:
/// **104 operations**: ten radix-2 complex butterflies plus the stage
/// scaling tail. Ten isomorphic butterflies give the matcher plenty of
/// regularity.
pub fn fft00() -> Application {
    let mut b = BlockBuilder::new("fft00_kernel").frequency(40_000);
    let mut outs: Vec<NodeId> = Vec::new();
    for k in 0..10 {
        let ar = b.input(format!("a{k}_re"));
        let ai = b.input(format!("a{k}_im"));
        let br = b.input(format!("b{k}_re"));
        let bi = b.input(format!("b{k}_im"));
        let wr = b.input(format!("w{k}_re"));
        let wi = b.input(format!("w{k}_im"));
        // complex twiddle multiply: t = w * b
        let p0 = b.op(Opcode::Mul, &[br, wr]).expect("arity");
        let p1 = b.op(Opcode::Mul, &[bi, wi]).expect("arity");
        let p2 = b.op(Opcode::Mul, &[br, wi]).expect("arity");
        let p3 = b.op(Opcode::Mul, &[bi, wr]).expect("arity");
        let tr = b.op(Opcode::Sub, &[p0, p1]).expect("arity");
        let ti = b.op(Opcode::Add, &[p2, p3]).expect("arity");
        // butterfly outputs
        let or0 = b.op(Opcode::Add, &[ar, tr]).expect("arity");
        let oi0 = b.op(Opcode::Add, &[ai, ti]).expect("arity");
        let or1 = b.op(Opcode::Sub, &[ar, tr]).expect("arity");
        let oi1 = b.op(Opcode::Sub, &[ai, ti]).expect("arity");
        outs.extend([or0, oi0, or1, oi1]);
    }
    // block-floating-point scaling of the first complex pair
    let shift = b.input("scale");
    let s0 = b.op(Opcode::Sar, &[outs[0], shift]).expect("arity");
    let s1 = b.op(Opcode::Sar, &[outs[1], shift]).expect("arity");
    let s2 = b.op(Opcode::Sar, &[outs[2], shift]).expect("arity");
    let s3 = b.op(Opcode::Sar, &[outs[3], shift]).expect("arity");
    let _ = (s0, s1, s2, s3);
    debug_assert_eq!(b.operation_count(), 10 * 10 + 4);
    assemble("fft00", b.build().expect("non-empty"), 0.70)
}

/// `fir00` — 16-tap fixed-point FIR filter (EEMBC telecom). Critical
/// block: **36 operations**: one multiply-accumulate chain over the tap
/// window followed by the rounding/saturation tail every fixed-point
/// filter carries.
pub fn fir00() -> Application {
    let mut b = BlockBuilder::new("fir00_kernel").frequency(90_000);
    let acc0 = b.input("acc_in");
    let pairs: Vec<(NodeId, NodeId)> = (0..16)
        .map(|i| (b.input(format!("x{i}")), b.input(format!("h{i}"))))
        .collect();
    let acc = mac_chain(&mut b, acc0, &pairs);
    // round, rescale, saturate to the output sample width
    let round = b.input("round");
    let shift = b.input("shift");
    let (lo, hi) = (b.input("sat_lo"), b.input("sat_hi"));
    let rounded = b.op(Opcode::Add, &[acc, round]).expect("arity");
    let scaled = b.op(Opcode::Sar, &[rounded, shift]).expect("arity");
    let out = clamp(&mut b, scaled, lo, hi);
    b.live_out(out).expect("in-block id");
    debug_assert_eq!(b.operation_count(), 16 * 2 + 4);
    assemble("fir00", b.build().expect("non-empty"), 0.65)
}

/// One 8-point even/odd-decomposition IDCT: even half as two rotator
/// pairs plus butterflies, odd half as the full 4×4 coefficient
/// combination, final recomposition butterflies. 40 operations.
fn idct_1d(b: &mut BlockBuilder, x: [NodeId; 8], c: &[NodeId; 7]) -> [NodeId; 8] {
    // even part: x0, x2, x4, x6
    let (e0, e1) = butterfly(b, x[0], x[4]);
    let m26 = b.op(Opcode::Mul, &[x[2], c[5]]).expect("arity");
    let m62 = b.op(Opcode::Mul, &[x[6], c[1]]).expect("arity");
    let e2 = b.op(Opcode::Sub, &[m26, m62]).expect("arity");
    let m22 = b.op(Opcode::Mul, &[x[2], c[1]]).expect("arity");
    let m66 = b.op(Opcode::Mul, &[x[6], c[5]]).expect("arity");
    let e3 = b.op(Opcode::Add, &[m22, m66]).expect("arity");
    let (t0, t3) = butterfly(b, e0, e3);
    let (t1, t2) = butterfly(b, e1, e2);
    // odd part: x1, x3, x5, x7 against the four odd cosine coefficients
    let products: [[NodeId; 2]; 4] = [
        [c[0], c[6]], // x1·c1, x1·c7
        [c[2], c[4]], // x3·c3, x3·c5
        [c[4], c[2]],
        [c[6], c[0]],
    ]
    .iter()
    .enumerate()
    .map(|(i, pair)| {
        [
            b.op(Opcode::Mul, &[x[2 * i + 1], pair[0]]).expect("arity"),
            b.op(Opcode::Mul, &[x[2 * i + 1], pair[1]]).expect("arity"),
        ]
    })
    .collect::<Vec<_>>()
    .try_into()
    .expect("four odd lanes");
    let combine = |b: &mut BlockBuilder, terms: [NodeId; 4], signs: [bool; 3]| {
        let mut acc = terms[0];
        for (t, &plus) in terms[1..].iter().zip(&signs) {
            let oc = if plus { Opcode::Add } else { Opcode::Sub };
            acc = b.op(oc, &[acc, *t]).expect("arity");
        }
        acc
    };
    let o0 = combine(
        b,
        [
            products[0][0],
            products[1][0],
            products[2][0],
            products[3][0],
        ],
        [true, true, true],
    );
    let o1 = combine(
        b,
        [
            products[0][1],
            products[1][1],
            products[2][0],
            products[3][0],
        ],
        [false, false, true],
    );
    let o2 = combine(
        b,
        [
            products[0][0],
            products[1][1],
            products[2][1],
            products[3][1],
        ],
        [true, true, false],
    );
    let o3 = combine(
        b,
        [
            products[0][1],
            products[1][0],
            products[2][0],
            products[3][1],
        ],
        [false, true, false],
    );
    // recomposition
    let (y0, y7) = butterfly(b, t0, o0);
    let (y1, y6) = butterfly(b, t1, o1);
    let (y2, y5) = butterfly(b, t2, o2);
    let (y3, y4) = butterfly(b, t3, o3);
    [y0, y1, y2, y3, y4, y5, y6, y7]
}

/// `idctrn01` — 8×8 inverse DCT (EEMBC consumer). Critical block:
/// **88 operations**: two unrolled 8-point even/odd-decomposition 1-D
/// IDCT passes (40 ops each, sharing the cosine coefficient inputs)
/// plus the descale tail on the final row.
pub fn idctrn01() -> Application {
    let mut b = BlockBuilder::new("idctrn01_kernel").frequency(45_000);
    let coeffs: [NodeId; 7] = std::array::from_fn(|i| b.input(format!("c{}", i + 1)));
    let mut last = [coeffs[0]; 8];
    for row in 0..2 {
        let x: [NodeId; 8] = std::array::from_fn(|i| b.input(format!("r{row}_{i}")));
        last = idct_1d(&mut b, x, &coeffs);
    }
    let shift = b.input("descale");
    for y in last {
        let out = b.op(Opcode::Sar, &[y, shift]).expect("arity");
        b.live_out(out).expect("in-block id");
    }
    debug_assert_eq!(b.operation_count(), 2 * 40 + 8);
    assemble("idctrn01", b.build().expect("non-empty"), 0.60)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_block_sizes_match_paper() {
        for (app, expected) in [
            (conven00(), 6),
            (fbital00(), 20),
            (viterb00(), 23),
            (autcor00(), 25),
            (fft00(), 104),
        ] {
            let crit = app.critical_block().expect("has blocks");
            assert_eq!(
                crit.operation_count(),
                expected,
                "{}: wrong critical block size",
                app.name()
            );
            assert!(crit.name().contains("kernel"));
        }
    }

    #[test]
    fn kernels_use_padding_free_structures() {
        // these kernels are built to exact counts without pad_to
        for app in [
            conven00(),
            fbital00(),
            viterb00(),
            autcor00(),
            fft00(),
            fir00(),
            idctrn01(),
        ] {
            assert_eq!(app.blocks().len(), 2, "{}", app.name());
            assert!(app.blocks()[1].frequency() >= 1);
        }
    }

    #[test]
    fn new_kernels_hit_their_sizes() {
        assert_eq!(fir00().critical_block().unwrap().operation_count(), 36);
        assert_eq!(idctrn01().critical_block().unwrap().operation_count(), 88);
    }

    #[test]
    fn fir_is_mac_dominated() {
        let app = fir00();
        let kernel = app.critical_block().unwrap();
        let muls = kernel
            .dag()
            .nodes()
            .filter(|(_, op)| op.opcode() == Opcode::Mul)
            .count();
        assert_eq!(muls, 16);
    }
}
