use crate::{adpcm_coder, adpcm_decoder, aes, autcor00, conven00, fbital00, fft00, viterb00};
use isegen_ir::Application;

/// A named benchmark with its paper-reported critical-block size.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Benchmark name, as in the paper's figures.
    pub name: &'static str,
    /// Operation count of the critical basic block reported by the paper
    /// (the parenthesised number in Fig. 4 / Fig. 6).
    pub paper_nodes: usize,
    /// Builder.
    pub build: fn() -> Application,
}

impl WorkloadSpec {
    /// Builds the application.
    pub fn application(&self) -> Application {
        (self.build)()
    }
}

/// Every workload of the paper's evaluation, in Fig. 4 order (ascending
/// critical-block size) plus AES.
pub fn all_workloads() -> Vec<WorkloadSpec> {
    let mut v = mediabench_eembc_suite();
    v.push(WorkloadSpec {
        name: "aes",
        paper_nodes: 696,
        build: aes,
    });
    v
}

/// The seven MediaBench/EEMBC benchmarks of Fig. 4, in the paper's order.
pub fn mediabench_eembc_suite() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "conven00",
            paper_nodes: 6,
            build: conven00,
        },
        WorkloadSpec {
            name: "fbital00",
            paper_nodes: 20,
            build: fbital00,
        },
        WorkloadSpec {
            name: "viterb00",
            paper_nodes: 23,
            build: viterb00,
        },
        WorkloadSpec {
            name: "autcor00",
            paper_nodes: 25,
            build: autcor00,
        },
        WorkloadSpec {
            name: "adpcm_decoder",
            paper_nodes: 82,
            build: adpcm_decoder,
        },
        WorkloadSpec {
            name: "adpcm_coder",
            paper_nodes: 96,
            build: adpcm_coder,
        },
        WorkloadSpec {
            name: "fft00",
            paper_nodes: 104,
            build: fft00,
        },
    ]
}

/// Looks a workload up by name.
pub fn workload_by_name(name: &str) -> Option<WorkloadSpec> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_matches_its_paper_size() {
        for spec in all_workloads() {
            let app = spec.application();
            let kernel = app.critical_block().expect("has blocks");
            assert_eq!(
                kernel.operation_count(),
                spec.paper_nodes,
                "{}: critical block size mismatch",
                spec.name
            );
        }
    }

    #[test]
    fn suite_is_in_ascending_size_order() {
        let suite = mediabench_eembc_suite();
        assert_eq!(suite.len(), 7);
        for w in suite.windows(2) {
            assert!(w[0].paper_nodes < w[1].paper_nodes);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(workload_by_name("aes").unwrap().paper_nodes, 696);
        assert!(workload_by_name("nonesuch").is_none());
    }
}
