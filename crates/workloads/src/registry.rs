//! The workload registry: every benchmark in the corpus with size,
//! category and provenance metadata, plus the filters drivers use to
//! enumerate by tier instead of hardcoding lists.

use crate::{
    adpcm_coder, adpcm_decoder, aes, aes128, aes256, autcor00, conven00, fbital00, fft00, fir00,
    gsm_ltp, idctrn01, jpeg_fdct, sha256, synth_deep, synth_io, synth_tiny, synth_wide, synth_xl,
    viterb00,
};
use isegen_ir::Application;

/// Benchmark suite a workload belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// EEMBC telecom/auto/consumer kernels.
    Eembc,
    /// MediaBench audio/video kernels.
    MediaBench,
    /// Cryptographic kernels (AES family, SHA-256).
    Crypto,
    /// Parameterised layered synthetic DFGs.
    Synthetic,
}

impl Category {
    /// Every category, in display order.
    pub const ALL: [Category; 4] = [
        Category::Eembc,
        Category::MediaBench,
        Category::Crypto,
        Category::Synthetic,
    ];

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Category::Eembc => "eembc",
            Category::MediaBench => "mediabench",
            Category::Crypto => "crypto",
            Category::Synthetic => "synthetic",
        }
    }
}

/// Size band of a workload's critical block, the unit CI and the
/// `scaling` binary use to bound what they run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SizeTier {
    /// Fewer than 100 operations — instant even in debug builds.
    Small,
    /// 100–799 operations — the paper's evaluation regime.
    Medium,
    /// 800–1999 operations — full-round crypto scale.
    Large,
    /// 2000+ operations — the stress regime for the incremental engine.
    Huge,
}

impl SizeTier {
    /// Every tier, ascending.
    pub const ALL: [SizeTier; 4] = [
        SizeTier::Small,
        SizeTier::Medium,
        SizeTier::Large,
        SizeTier::Huge,
    ];

    /// The tier a critical block of `ops` operations falls into.
    pub fn of(ops: usize) -> Self {
        match ops {
            0..=99 => SizeTier::Small,
            100..=799 => SizeTier::Medium,
            800..=1999 => SizeTier::Large,
            _ => SizeTier::Huge,
        }
    }

    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            SizeTier::Small => "small",
            SizeTier::Medium => "medium",
            SizeTier::Large => "large",
            SizeTier::Huge => "huge",
        }
    }

    /// Parses a lower-case tier name.
    pub fn parse(s: &str) -> Option<Self> {
        SizeTier::ALL.into_iter().find(|t| t.name() == s)
    }
}

/// A named benchmark with its critical-block size and provenance.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Benchmark name, as in the paper's figures where applicable.
    pub name: &'static str,
    /// Operation count of the critical basic block. For the paper's
    /// workloads this is the parenthesised number in Fig. 4 / Fig. 6;
    /// for the expansion corpus it is asserted by the registry tests.
    pub kernel_ops: usize,
    /// Which suite the workload belongs to.
    pub category: Category,
    /// Where the kernel comes from (one line, for the README table).
    pub provenance: &'static str,
    /// Whether the workload is part of the paper's own evaluation
    /// (Fig. 4 suite + AES) rather than the expansion corpus.
    pub in_paper: bool,
    /// Builder.
    pub build: fn() -> Application,
}

impl WorkloadSpec {
    /// Builds the application.
    pub fn application(&self) -> Application {
        (self.build)()
    }

    /// The size tier of the critical block.
    pub fn tier(&self) -> SizeTier {
        SizeTier::of(self.kernel_ops)
    }
}

macro_rules! spec {
    ($name:literal, $ops:expr, $cat:ident, $prov:literal, $paper:literal, $build:path) => {
        WorkloadSpec {
            name: $name,
            kernel_ops: $ops,
            category: Category::$cat,
            provenance: $prov,
            in_paper: $paper,
            build: $build,
        }
    };
}

/// The whole corpus, in ascending critical-block size (ties broken by
/// name): the paper's eight workloads plus the expansion kernels and
/// the synthetic family.
pub fn all_workloads() -> Vec<WorkloadSpec> {
    let mut v = vec![
        spec!(
            "conven00",
            6,
            Eembc,
            "EEMBC telecom: convolutional encoder",
            true,
            conven00
        ),
        spec!(
            "fbital00",
            20,
            Eembc,
            "EEMBC telecom: DSL bit allocation",
            true,
            fbital00
        ),
        spec!(
            "viterb00",
            23,
            Eembc,
            "EEMBC telecom: Viterbi ACS butterflies",
            true,
            viterb00
        ),
        spec!(
            "autcor00",
            25,
            Eembc,
            "EEMBC auto: fixed-point autocorrelation",
            true,
            autcor00
        ),
        spec!(
            "fir00",
            36,
            Eembc,
            "EEMBC telecom: 16-tap saturated FIR",
            false,
            fir00
        ),
        spec!(
            "synth_tiny",
            64,
            Synthetic,
            "layered 8x8, fan-in 2",
            false,
            synth_tiny
        ),
        spec!(
            "adpcm_decoder",
            82,
            MediaBench,
            "MediaBench: IMA-ADPCM decode step",
            true,
            adpcm_decoder
        ),
        spec!(
            "idctrn01",
            88,
            Eembc,
            "EEMBC consumer: 8-point IDCT rows",
            false,
            idctrn01
        ),
        spec!(
            "adpcm_coder",
            96,
            MediaBench,
            "MediaBench: IMA-ADPCM quantiser search",
            true,
            adpcm_coder
        ),
        spec!(
            "gsm_ltp",
            102,
            MediaBench,
            "MediaBench: GSM 06.10 long-term predictor",
            false,
            gsm_ltp
        ),
        spec!(
            "fft00",
            104,
            Eembc,
            "EEMBC auto: radix-2 FFT butterflies",
            true,
            fft00
        ),
        spec!(
            "jpeg_fdct",
            112,
            MediaBench,
            "MediaBench: cjpeg forward DCT + quantise",
            false,
            jpeg_fdct
        ),
        spec!(
            "synth_io",
            256,
            Synthetic,
            "layered 16x16, fan-in 3, heavy I/O",
            false,
            synth_io
        ),
        spec!(
            "synth_deep",
            480,
            Synthetic,
            "layered 6x80, serial chains",
            false,
            synth_deep
        ),
        spec!(
            "synth_wide",
            512,
            Synthetic,
            "layered 64x8, extreme ILP",
            false,
            synth_wide
        ),
        spec!(
            "aes",
            696,
            Crypto,
            "paper section 5: reduced-round AES",
            true,
            aes
        ),
        spec!(
            "aes128",
            1020,
            Crypto,
            "FIPS-197: full 10-round AES-128",
            false,
            aes128
        ),
        spec!(
            "aes256",
            1452,
            Crypto,
            "FIPS-197: full 14-round AES-256",
            false,
            aes256
        ),
        spec!(
            "synth_xl",
            2048,
            Synthetic,
            "layered 32x64, stress regime",
            false,
            synth_xl
        ),
        spec!(
            "sha256",
            2296,
            Crypto,
            "FIPS-180-4: 64-round compression",
            false,
            sha256
        ),
    ];
    v.sort_by(|a, b| a.kernel_ops.cmp(&b.kernel_ops).then(a.name.cmp(b.name)));
    v
}

/// The seven MediaBench/EEMBC benchmarks of the paper's Fig. 4, in the
/// paper's (ascending-size) order — enumerated from the registry.
pub fn mediabench_eembc_suite() -> Vec<WorkloadSpec> {
    all_workloads()
        .into_iter()
        .filter(|w| w.in_paper && w.category != Category::Crypto)
        .collect()
}

/// The paper's own evaluation set: the Fig. 4 suite plus AES.
pub fn paper_suite() -> Vec<WorkloadSpec> {
    all_workloads().into_iter().filter(|w| w.in_paper).collect()
}

/// Workloads of one category, ascending size.
pub fn workloads_in(category: Category) -> Vec<WorkloadSpec> {
    all_workloads()
        .into_iter()
        .filter(|w| w.category == category)
        .collect()
}

/// Workloads whose critical block falls in any of `tiers`, ascending
/// size.
pub fn workloads_in_tiers(tiers: &[SizeTier]) -> Vec<WorkloadSpec> {
    all_workloads()
        .into_iter()
        .filter(|w| tiers.contains(&w.tier()))
        .collect()
}

/// Workloads with at most `max_ops` critical-block operations.
pub fn workloads_up_to(max_ops: usize) -> Vec<WorkloadSpec> {
    all_workloads()
        .into_iter()
        .filter(|w| w.kernel_ops <= max_ops)
        .collect()
}

/// Looks a workload up by name.
pub fn workload_by_name(name: &str) -> Option<WorkloadSpec> {
    all_workloads().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_matches_its_registered_size() {
        for spec in all_workloads() {
            let app = spec.application();
            let kernel = app.critical_block().expect("has blocks");
            assert_eq!(
                kernel.operation_count(),
                spec.kernel_ops,
                "{}: critical block size mismatch",
                spec.name
            );
        }
    }

    #[test]
    fn suite_is_in_ascending_size_order() {
        let suite = mediabench_eembc_suite();
        assert_eq!(suite.len(), 7);
        for w in suite.windows(2) {
            assert!(w[0].kernel_ops < w[1].kernel_ops);
        }
        assert!(suite.iter().all(|w| w.in_paper));
    }

    #[test]
    fn paper_suite_is_fig4_plus_aes() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 8);
        assert_eq!(suite.last().unwrap().name, "aes");
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(workload_by_name("aes").unwrap().kernel_ops, 696);
        assert!(workload_by_name("nonesuch").is_none());
    }

    #[test]
    fn tier_boundaries() {
        assert_eq!(SizeTier::of(0), SizeTier::Small);
        assert_eq!(SizeTier::of(99), SizeTier::Small);
        assert_eq!(SizeTier::of(100), SizeTier::Medium);
        assert_eq!(SizeTier::of(799), SizeTier::Medium);
        assert_eq!(SizeTier::of(800), SizeTier::Large);
        assert_eq!(SizeTier::of(1999), SizeTier::Large);
        assert_eq!(SizeTier::of(2000), SizeTier::Huge);
        assert_eq!(SizeTier::parse("medium"), Some(SizeTier::Medium));
        assert_eq!(SizeTier::parse("colossal"), None);
    }

    #[test]
    fn filters_agree_with_the_full_enumeration() {
        let all = all_workloads();
        let by_category: usize = Category::ALL.iter().map(|&c| workloads_in(c).len()).sum();
        assert_eq!(by_category, all.len());
        let by_tier = workloads_in_tiers(&SizeTier::ALL);
        assert_eq!(by_tier.len(), all.len());
        assert!(workloads_up_to(100).iter().all(|w| w.kernel_ops <= 100));
        assert!(workloads_in_tiers(&[SizeTier::Huge])
            .iter()
            .all(|w| w.kernel_ops >= 2000));
    }
}
