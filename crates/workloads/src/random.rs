//! Random operation DFGs for stress tests and scaling benchmarks.

use isegen_graph::NodeId;
use isegen_ir::{Application, BlockBuilder, Opcode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of [`random_application`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWorkloadConfig {
    /// RNG seed; equal seeds give identical applications.
    pub seed: u64,
    /// Number of basic blocks.
    pub blocks: usize,
    /// Operations per block.
    pub ops_per_block: usize,
    /// Probability that an operand comes from a fresh external input
    /// rather than an earlier operation.
    pub input_bias: f64,
    /// Probability of a memory operation (barrier) per op slot.
    pub memory_fraction: f64,
}

impl Default for RandomWorkloadConfig {
    fn default() -> Self {
        RandomWorkloadConfig {
            seed: 0xDA67,
            blocks: 1,
            ops_per_block: 64,
            input_bias: 0.2,
            memory_fraction: 0.05,
        }
    }
}

const UNARY: [Opcode; 5] = [
    Opcode::Not,
    Opcode::Abs,
    Opcode::Neg,
    Opcode::SBox,
    Opcode::Xtime,
];
const BINARY: [Opcode; 12] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Eq,
    Opcode::Lt,
    Opcode::Min,
    Opcode::Max,
];
const TERNARY: [Opcode; 2] = [Opcode::Select, Opcode::Mac];

/// Generates a deterministic random application: each block is a layered
/// DFG of arithmetic/logic operations with occasional memory barriers,
/// shaped like compiler-produced straight-line code.
///
/// # Panics
///
/// Panics if `config.ops_per_block` is zero or probabilities are outside
/// `0.0..=1.0`.
pub fn random_application(config: &RandomWorkloadConfig) -> Application {
    assert!(config.ops_per_block > 0, "blocks must contain operations");
    assert!(
        (0.0..=1.0).contains(&config.input_bias),
        "invalid input_bias"
    );
    assert!(
        (0.0..=1.0).contains(&config.memory_fraction),
        "invalid memory_fraction"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut app = Application::new(format!("random_{:#x}", config.seed));
    for bi in 0..config.blocks {
        let mut b = BlockBuilder::new(format!("random_b{bi}")).frequency(1_000);
        let mut values: Vec<NodeId> = vec![b.input("seed0"), b.input("seed1")];
        let operand = |b: &mut BlockBuilder, rng: &mut StdRng, values: &[NodeId]| -> NodeId {
            if rng.gen_bool(config.input_bias) {
                b.input(format!("in{}", values.len()))
            } else {
                values[rng.gen_range(0..values.len())]
            }
        };
        for _ in 0..config.ops_per_block {
            let v = if rng.gen_bool(config.memory_fraction) {
                let addr = operand(&mut b, &mut rng, &values);
                b.op(Opcode::Load, &[addr]).expect("arity")
            } else {
                match rng.gen_range(0..10) {
                    0..=1 => {
                        let a = operand(&mut b, &mut rng, &values);
                        let oc = UNARY[rng.gen_range(0..UNARY.len())];
                        b.op(oc, &[a]).expect("arity")
                    }
                    2 => {
                        let a = operand(&mut b, &mut rng, &values);
                        let c = operand(&mut b, &mut rng, &values);
                        let d = operand(&mut b, &mut rng, &values);
                        let oc = TERNARY[rng.gen_range(0..TERNARY.len())];
                        b.op(oc, &[a, c, d]).expect("arity")
                    }
                    _ => {
                        let a = operand(&mut b, &mut rng, &values);
                        let c = operand(&mut b, &mut rng, &values);
                        let oc = BINARY[rng.gen_range(0..BINARY.len())];
                        b.op(oc, &[a, c]).expect("arity")
                    }
                }
            };
            values.push(v);
        }
        app.push_block(b.build().expect("non-empty"));
    }
    app
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = RandomWorkloadConfig::default();
        let a = random_application(&cfg);
        let b = random_application(&cfg);
        assert_eq!(a.blocks().len(), b.blocks().len());
        for (ba, bb) in a.blocks().iter().zip(b.blocks()) {
            assert_eq!(ba.node_count(), bb.node_count());
            assert_eq!(
                ba.dag().edges().collect::<Vec<_>>(),
                bb.dag().edges().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn respects_sizes() {
        let cfg = RandomWorkloadConfig {
            blocks: 3,
            ops_per_block: 40,
            ..RandomWorkloadConfig::default()
        };
        let app = random_application(&cfg);
        assert_eq!(app.blocks().len(), 3);
        for b in app.blocks() {
            assert_eq!(b.operation_count(), 40);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_application(&RandomWorkloadConfig {
            seed: 1,
            ..RandomWorkloadConfig::default()
        });
        let b = random_application(&RandomWorkloadConfig {
            seed: 2,
            ..RandomWorkloadConfig::default()
        });
        let ea: Vec<_> = a.blocks()[0].dag().edges().collect();
        let eb: Vec<_> = b.blocks()[0].dag().edges().collect();
        assert_ne!(ea, eb);
    }
}
