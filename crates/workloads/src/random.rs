//! Random operation DFGs for stress tests and scaling benchmarks:
//! [`random_application`] (free-form straight-line code) and the
//! parameterised layered [`synthetic_application`] family whose named
//! members ([`synth_tiny`] … [`synth_xl`]) stretch the corpus to
//! several-thousand-op blocks.

use crate::util::assemble;
use isegen_graph::NodeId;
use isegen_ir::{Application, BlockBuilder, Opcode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of [`random_application`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWorkloadConfig {
    /// RNG seed; equal seeds give identical applications.
    pub seed: u64,
    /// Number of basic blocks.
    pub blocks: usize,
    /// Operations per block.
    pub ops_per_block: usize,
    /// Probability that an operand comes from a fresh external input
    /// rather than an earlier operation.
    pub input_bias: f64,
    /// Probability of a memory operation (barrier) per op slot.
    pub memory_fraction: f64,
}

impl Default for RandomWorkloadConfig {
    fn default() -> Self {
        RandomWorkloadConfig {
            seed: 0xDA67,
            blocks: 1,
            ops_per_block: 64,
            input_bias: 0.2,
            memory_fraction: 0.05,
        }
    }
}

const UNARY: [Opcode; 5] = [
    Opcode::Not,
    Opcode::Abs,
    Opcode::Neg,
    Opcode::SBox,
    Opcode::Xtime,
];
const BINARY: [Opcode; 12] = [
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Eq,
    Opcode::Lt,
    Opcode::Min,
    Opcode::Max,
];
const TERNARY: [Opcode; 2] = [Opcode::Select, Opcode::Mac];

/// Generates a deterministic random application: each block is a layered
/// DFG of arithmetic/logic operations with occasional memory barriers,
/// shaped like compiler-produced straight-line code.
///
/// # Panics
///
/// Panics if `config.ops_per_block` is zero or probabilities are outside
/// `0.0..=1.0`.
pub fn random_application(config: &RandomWorkloadConfig) -> Application {
    assert!(config.ops_per_block > 0, "blocks must contain operations");
    assert!(
        (0.0..=1.0).contains(&config.input_bias),
        "invalid input_bias"
    );
    assert!(
        (0.0..=1.0).contains(&config.memory_fraction),
        "invalid memory_fraction"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut app = Application::new(format!("random_{:#x}", config.seed));
    for bi in 0..config.blocks {
        let mut b = BlockBuilder::new(format!("random_b{bi}")).frequency(1_000);
        let mut values: Vec<NodeId> = vec![b.input("seed0"), b.input("seed1")];
        let operand = |b: &mut BlockBuilder, rng: &mut StdRng, values: &[NodeId]| -> NodeId {
            if rng.gen_bool(config.input_bias) {
                b.input(format!("in{}", values.len()))
            } else {
                values[rng.gen_range(0..values.len())]
            }
        };
        for _ in 0..config.ops_per_block {
            let v = if rng.gen_bool(config.memory_fraction) {
                let addr = operand(&mut b, &mut rng, &values);
                b.op(Opcode::Load, &[addr]).expect("arity")
            } else {
                match rng.gen_range(0..10) {
                    0..=1 => {
                        let a = operand(&mut b, &mut rng, &values);
                        let oc = UNARY[rng.gen_range(0..UNARY.len())];
                        b.op(oc, &[a]).expect("arity")
                    }
                    2 => {
                        let a = operand(&mut b, &mut rng, &values);
                        let c = operand(&mut b, &mut rng, &values);
                        let d = operand(&mut b, &mut rng, &values);
                        let oc = TERNARY[rng.gen_range(0..TERNARY.len())];
                        b.op(oc, &[a, c, d]).expect("arity")
                    }
                    _ => {
                        let a = operand(&mut b, &mut rng, &values);
                        let c = operand(&mut b, &mut rng, &values);
                        let oc = BINARY[rng.gen_range(0..BINARY.len())];
                        b.op(oc, &[a, c]).expect("arity")
                    }
                }
            };
            values.push(v);
        }
        app.push_block(b.build().expect("non-empty"));
    }
    app
}

/// Configuration of [`synthetic_application`]: a layered DFG whose
/// shape is swept along four independent axes — width (ILP), depth
/// (serial chains), fan-in (operand pressure) and I/O pressure (how
/// often an operand is a fresh live-in instead of an earlier result).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// RNG seed; equal configs give identical applications.
    pub seed: u64,
    /// Operations per layer (the DFG's parallel width).
    pub width: usize,
    /// Number of layers (the DFG's serial depth). The kernel holds
    /// exactly `width × depth` operations.
    pub depth: usize,
    /// Maximum operand count per operation (1–3; the IR's widest arity).
    pub fan_in: usize,
    /// Probability that an operand is a fresh external input — high
    /// values starve cuts of internal edges and stress the I/O budget.
    pub input_bias: f64,
    /// Probability of a memory operation (barrier) per op slot.
    pub memory_fraction: f64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            seed: 0x5EED,
            width: 8,
            depth: 8,
            fan_in: 2,
            input_bias: 0.15,
            memory_fraction: 0.0,
        }
    }
}

/// Generates a deterministic layered synthetic kernel: `depth` layers of
/// `width` operations, each drawing most operands from the previous
/// layer (with occasional long-range edges and fresh inputs), assembled
/// into an application with the usual memory-bound support block.
///
/// # Panics
///
/// Panics if `width`/`depth` is zero, `fan_in` is outside `1..=3` or a
/// probability is outside `0.0..=1.0`.
pub fn synthetic_application(name: &str, config: &SyntheticConfig) -> Application {
    assert!(
        config.width > 0 && config.depth > 0,
        "empty synthetic shape"
    );
    assert!(
        (1..=3).contains(&config.fan_in),
        "fan_in {} outside the IR's 1..=3 arity range",
        config.fan_in
    );
    assert!(
        (0.0..=1.0).contains(&config.input_bias),
        "invalid input_bias"
    );
    assert!(
        (0.0..=1.0).contains(&config.memory_fraction),
        "invalid memory_fraction"
    );
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut b = BlockBuilder::new(format!("{name}_kernel")).frequency(5_000);
    let mut prev_layer: Vec<NodeId> = (0..config.width.max(2))
        .map(|i| b.input(format!("seed{i}")))
        .collect();
    let mut earlier: Vec<NodeId> = prev_layer.clone();
    let mut fresh = 0usize;
    for _layer in 0..config.depth {
        let mut layer = Vec::with_capacity(config.width);
        for _ in 0..config.width {
            let mut operand = |b: &mut BlockBuilder, rng: &mut StdRng| -> NodeId {
                if rng.gen_bool(config.input_bias) {
                    fresh += 1;
                    b.input(format!("in{fresh}"))
                } else if rng.gen_bool(0.8) {
                    prev_layer[rng.gen_range(0..prev_layer.len())]
                } else {
                    earlier[rng.gen_range(0..earlier.len())]
                }
            };
            let v = if config.memory_fraction > 0.0 && rng.gen_bool(config.memory_fraction) {
                let addr = operand(&mut b, &mut rng);
                b.op(Opcode::Load, &[addr]).expect("arity")
            } else {
                // mostly max-arity nodes, with a sprinkle of narrower ones
                let arity = if config.fan_in > 1 && rng.gen_bool(0.2) {
                    rng.gen_range(1..config.fan_in)
                } else {
                    config.fan_in
                };
                match arity {
                    1 => {
                        let a = operand(&mut b, &mut rng);
                        let oc = UNARY[rng.gen_range(0..UNARY.len())];
                        b.op(oc, &[a]).expect("arity")
                    }
                    2 => {
                        let a = operand(&mut b, &mut rng);
                        let c = operand(&mut b, &mut rng);
                        let oc = BINARY[rng.gen_range(0..BINARY.len())];
                        b.op(oc, &[a, c]).expect("arity")
                    }
                    _ => {
                        let a = operand(&mut b, &mut rng);
                        let c = operand(&mut b, &mut rng);
                        let d = operand(&mut b, &mut rng);
                        let oc = TERNARY[rng.gen_range(0..TERNARY.len())];
                        b.op(oc, &[a, c, d]).expect("arity")
                    }
                }
            };
            layer.push(v);
        }
        earlier.extend(&layer);
        prev_layer = layer;
    }
    debug_assert_eq!(b.operation_count(), config.width * config.depth);
    assemble(name, b.build().expect("non-empty"), 0.90)
}

/// `synth_tiny` — 8×8 layered DFG (**64 ops**): the smallest synthetic
/// family member, quick enough for debug-mode tests.
pub fn synth_tiny() -> Application {
    synthetic_application("synth_tiny", &SyntheticConfig::default())
}

/// `synth_io` — 16×16 with ternary fan-in and heavy I/O pressure
/// (**256 ops**): every other operand is a fresh live-in, starving cuts
/// of internal edges.
pub fn synth_io() -> Application {
    synthetic_application(
        "synth_io",
        &SyntheticConfig {
            seed: 0x10AD,
            width: 16,
            depth: 16,
            fan_in: 3,
            input_bias: 0.45,
            ..SyntheticConfig::default()
        },
    )
}

/// `synth_deep` — 6×80 (**480 ops**): long serial chains, minimal ILP —
/// the worst case for directional cut growth.
pub fn synth_deep() -> Application {
    synthetic_application(
        "synth_deep",
        &SyntheticConfig {
            seed: 0xDEEB,
            width: 6,
            depth: 80,
            input_bias: 0.05,
            ..SyntheticConfig::default()
        },
    )
}

/// `synth_wide` — 64×8 (**512 ops**): extreme ILP with shallow depth,
/// plus a 2% memory-barrier sprinkle.
pub fn synth_wide() -> Application {
    synthetic_application(
        "synth_wide",
        &SyntheticConfig {
            seed: 0x71DE,
            width: 64,
            depth: 8,
            memory_fraction: 0.02,
            ..SyntheticConfig::default()
        },
    )
}

/// `synth_xl` — 32×64 (**2048 ops**): the corpus's largest block, the
/// regime where the incremental toggle engine and gain cache earn their
/// keep.
pub fn synth_xl() -> Application {
    synthetic_application(
        "synth_xl",
        &SyntheticConfig {
            seed: 0x2048,
            width: 32,
            depth: 64,
            input_bias: 0.10,
            ..SyntheticConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = RandomWorkloadConfig::default();
        let a = random_application(&cfg);
        let b = random_application(&cfg);
        assert_eq!(a.blocks().len(), b.blocks().len());
        for (ba, bb) in a.blocks().iter().zip(b.blocks()) {
            assert_eq!(ba.node_count(), bb.node_count());
            assert_eq!(
                ba.dag().edges().collect::<Vec<_>>(),
                bb.dag().edges().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn respects_sizes() {
        let cfg = RandomWorkloadConfig {
            blocks: 3,
            ops_per_block: 40,
            ..RandomWorkloadConfig::default()
        };
        let app = random_application(&cfg);
        assert_eq!(app.blocks().len(), 3);
        for b in app.blocks() {
            assert_eq!(b.operation_count(), 40);
        }
    }

    #[test]
    fn synthetic_family_hits_exact_shapes() {
        for (app, ops) in [
            (synth_tiny(), 64),
            (synth_io(), 256),
            (synth_deep(), 480),
            (synth_wide(), 512),
            (synth_xl(), 2048),
        ] {
            let kernel = app.critical_block().expect("has blocks");
            assert_eq!(kernel.operation_count(), ops, "{}", app.name());
            assert!(kernel.name().ends_with("_kernel"));
        }
    }

    #[test]
    fn synthetic_generation_is_deterministic() {
        let cfg = SyntheticConfig {
            width: 12,
            depth: 10,
            memory_fraction: 0.05,
            ..SyntheticConfig::default()
        };
        let a = synthetic_application("t", &cfg);
        let b = synthetic_application("t", &cfg);
        let (ka, kb) = (a.critical_block().unwrap(), b.critical_block().unwrap());
        assert_eq!(
            ka.dag().edges().collect::<Vec<_>>(),
            kb.dag().edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn io_pressure_raises_live_in_count() {
        let lean = synthetic_application(
            "lean",
            &SyntheticConfig {
                input_bias: 0.02,
                width: 16,
                depth: 16,
                ..SyntheticConfig::default()
            },
        );
        let hungry = synthetic_application(
            "hungry",
            &SyntheticConfig {
                input_bias: 0.5,
                width: 16,
                depth: 16,
                ..SyntheticConfig::default()
            },
        );
        let inputs = |app: &Application| {
            let k = app.critical_block().unwrap();
            k.node_count() - k.operation_count()
        };
        assert!(inputs(&hungry) > 2 * inputs(&lean));
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_application(&RandomWorkloadConfig {
            seed: 1,
            ..RandomWorkloadConfig::default()
        });
        let b = random_application(&RandomWorkloadConfig {
            seed: 2,
            ..RandomWorkloadConfig::default()
        });
        let ea: Vec<_> = a.blocks()[0].dag().edges().collect();
        let eb: Vec<_> = b.blocks()[0].dag().edges().collect();
        assert_ne!(ea, eb);
    }
}
