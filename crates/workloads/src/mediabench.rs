//! MediaBench ADPCM coder/decoder kernels.

use crate::util::{assemble, pad_to};
use isegen_graph::NodeId;
use isegen_ir::{Application, BlockBuilder, BuildError, Opcode};

/// The IMA-ADPCM predictor/step update shared by coder and decoder:
/// `vpdiff` reconstruction from the 3 delta bits, predictor accumulate
/// and clamp, step-size table advance. Table accesses are genuine `Load`
/// nodes — memory barriers the cut must grow around, as in the paper.
///
/// Returns `(valpred, step)` for chaining.
fn adpcm_step(
    b: &mut BlockBuilder,
    delta: NodeId,
    valpred_in: NodeId,
    step: NodeId,
    tag: &str,
) -> Result<(NodeId, NodeId), BuildError> {
    let one = b.input(format!("c1_{tag}"));
    let two = b.input(format!("c2_{tag}"));
    let three = b.input(format!("c3_{tag}"));
    let vmin = b.input(format!("vmin_{tag}"));
    let vmax = b.input(format!("vmax_{tag}"));
    let index_table = b.input(format!("indextab_{tag}"));
    let step_table = b.input(format!("steptab_{tag}"));

    // vpdiff = step>>3, conditionally += step, step>>1, step>>2
    let mut vpdiff = b.op(Opcode::Shr, &[step, three])?;
    let b2 = b.op(Opcode::And, &[delta, one])?; // bit 0 (reordered taps)
    let b1 = b.op(Opcode::Shr, &[delta, one])?;
    let b1m = b.op(Opcode::And, &[b1, one])?;
    let b0 = b.op(Opcode::Shr, &[delta, two])?;
    let b0m = b.op(Opcode::And, &[b0, one])?;
    let s1 = b.op(Opcode::Shr, &[step, one])?;
    let s2 = b.op(Opcode::Shr, &[step, two])?;
    let add_full = b.op(Opcode::Add, &[vpdiff, step])?;
    vpdiff = b.op(Opcode::Select, &[b0m, add_full, vpdiff])?;
    let add_half = b.op(Opcode::Add, &[vpdiff, s1])?;
    vpdiff = b.op(Opcode::Select, &[b1m, add_half, vpdiff])?;
    let add_quarter = b.op(Opcode::Add, &[vpdiff, s2])?;
    vpdiff = b.op(Opcode::Select, &[b2, add_quarter, vpdiff])?;

    // sign handling: valpred ± vpdiff
    let sign = b.op(Opcode::Shr, &[delta, three])?;
    let signm = b.op(Opcode::And, &[sign, one])?;
    let vplus = b.op(Opcode::Add, &[valpred_in, vpdiff])?;
    let vminus = b.op(Opcode::Sub, &[valpred_in, vpdiff])?;
    let vsel = b.op(Opcode::Select, &[signm, vminus, vplus])?;

    // clamp to 16-bit range
    let vlo = b.op(Opcode::Max, &[vsel, vmin])?;
    let valpred = b.op(Opcode::Min, &[vlo, vmax])?;

    // index advance + step table lookup (memory barrier)
    let idx_addr = b.op(Opcode::Add, &[index_table, delta])?;
    let idx_delta = b.op(Opcode::Load, &[idx_addr])?;
    let step_addr = b.op(Opcode::Add, &[step_table, idx_delta])?;
    let next_step = b.op(Opcode::Load, &[step_addr])?;
    b.live_out(valpred)?;
    Ok((valpred, next_step))
}

/// `adpcm_decoder` (MediaBench). Critical block: **82 operations** —
/// three unrolled decode steps (the inner loop processes two 4-bit
/// samples per byte plus the carry step) and the output repack tail.
pub fn adpcm_decoder() -> Application {
    let mut b = BlockBuilder::new("adpcm_decoder_kernel").frequency(50_000);
    let packed = b.input("packed");
    let four = b.input("c4");
    let mask = b.input("c0f");
    let mut valpred = b.input("valpred_in");
    let mut step = b.input("step_in");
    // unpack two nibbles
    let hi = b.op(Opcode::Shr, &[packed, four]).expect("arity");
    let d0 = b.op(Opcode::And, &[hi, mask]).expect("arity");
    let d1 = b.op(Opcode::And, &[packed, mask]).expect("arity");
    for (i, delta) in [d0, d1].into_iter().enumerate() {
        let (v, s) = adpcm_step(&mut b, delta, valpred, step, &format!("d{i}")).expect("step");
        valpred = v;
        step = s;
    }
    // output repack
    let last = b.op(Opcode::Shl, &[valpred, four]).expect("arity");
    pad_to(&mut b, 82, &[last, valpred, step]);
    assemble("adpcm_decoder", b.build().expect("non-empty"), 0.50)
}

/// `adpcm_coder` (MediaBench). Critical block: **96 operations** — the
/// quantisation search (difference, sign split, three-step successive
/// approximation) followed by the same predictor update as the decoder.
pub fn adpcm_coder() -> Application {
    let mut b = BlockBuilder::new("adpcm_coder_kernel").frequency(50_000);
    let sample = b.input("sample");
    let one = b.input("k1");
    let two = b.input("k2");
    let three = b.input("k3");
    let mut valpred = b.input("valpred_in");
    let mut step = b.input("step_in");

    // diff = sample - valpred; sign = diff < 0; diff = |diff|
    let diff = b.op(Opcode::Sub, &[sample, valpred]).expect("arity");
    let zero = b.op(Opcode::Xor, &[diff, diff]).expect("arity");
    let sign = b.op(Opcode::Lt, &[diff, zero]).expect("arity");
    let adiff = b.op(Opcode::Abs, &[diff]).expect("arity");

    // successive approximation: three compare/subtract/accumulate steps
    let mut delta = zero;
    let mut rem = adiff;
    let mut stepk = step;
    for k in 0..3 {
        let ge = b.op(Opcode::Lt, &[stepk, rem]).expect("arity");
        let sub = b.op(Opcode::Sub, &[rem, stepk]).expect("arity");
        rem = b.op(Opcode::Select, &[ge, sub, rem]).expect("arity");
        let bit = b.op(Opcode::Shl, &[ge, two]).expect("arity");
        delta = b.op(Opcode::Or, &[delta, bit]).expect("arity");
        if k < 2 {
            stepk = b.op(Opcode::Shr, &[stepk, one]).expect("arity");
        }
    }
    // fold the sign bit into the code
    let signbit = b.op(Opcode::Shl, &[sign, three]).expect("arity");
    let code = b.op(Opcode::Or, &[delta, signbit]).expect("arity");
    b.live_out(code).expect("in-block id");

    // two predictor updates (current nibble + pipelined next)
    for i in 0..2 {
        let (v, s) = adpcm_step(&mut b, code, valpred, step, &format!("c{i}")).expect("step");
        valpred = v;
        step = s;
    }
    pad_to(&mut b, 96, &[valpred, step, code]);
    assemble("adpcm_coder", b.build().expect("non-empty"), 0.55)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_block_sizes_match_paper() {
        let dec = adpcm_decoder();
        assert_eq!(dec.critical_block().unwrap().operation_count(), 82);
        let cod = adpcm_coder();
        assert_eq!(cod.critical_block().unwrap().operation_count(), 96);
    }

    #[test]
    fn kernels_contain_memory_barriers() {
        for app in [adpcm_decoder(), adpcm_coder()] {
            let kernel = app.critical_block().unwrap();
            let loads = kernel
                .dag()
                .nodes()
                .filter(|(_, op)| op.opcode() == Opcode::Load)
                .count();
            assert!(loads >= 2, "{}: expected step-table loads", app.name());
            // loads are not eligible for cuts
            for (id, op) in kernel.dag().nodes() {
                if op.opcode().is_memory() {
                    assert!(!kernel.eligible_nodes().contains(id));
                }
            }
        }
    }
}
