//! MediaBench kernels: ADPCM coder/decoder, the JPEG forward DCT and
//! the GSM long-term predictor search.

use crate::util::{assemble, butterfly, clamp, mac_chain, pad_to};
use isegen_graph::NodeId;
use isegen_ir::{Application, BlockBuilder, BuildError, Opcode};

/// The IMA-ADPCM predictor/step update shared by coder and decoder:
/// `vpdiff` reconstruction from the 3 delta bits, predictor accumulate
/// and clamp, step-size table advance. Table accesses are genuine `Load`
/// nodes — memory barriers the cut must grow around, as in the paper.
///
/// Returns `(valpred, step)` for chaining.
fn adpcm_step(
    b: &mut BlockBuilder,
    delta: NodeId,
    valpred_in: NodeId,
    step: NodeId,
    tag: &str,
) -> Result<(NodeId, NodeId), BuildError> {
    let one = b.input(format!("c1_{tag}"));
    let two = b.input(format!("c2_{tag}"));
    let three = b.input(format!("c3_{tag}"));
    let vmin = b.input(format!("vmin_{tag}"));
    let vmax = b.input(format!("vmax_{tag}"));
    let index_table = b.input(format!("indextab_{tag}"));
    let step_table = b.input(format!("steptab_{tag}"));

    // vpdiff = step>>3, conditionally += step, step>>1, step>>2
    let mut vpdiff = b.op(Opcode::Shr, &[step, three])?;
    let b2 = b.op(Opcode::And, &[delta, one])?; // bit 0 (reordered taps)
    let b1 = b.op(Opcode::Shr, &[delta, one])?;
    let b1m = b.op(Opcode::And, &[b1, one])?;
    let b0 = b.op(Opcode::Shr, &[delta, two])?;
    let b0m = b.op(Opcode::And, &[b0, one])?;
    let s1 = b.op(Opcode::Shr, &[step, one])?;
    let s2 = b.op(Opcode::Shr, &[step, two])?;
    let add_full = b.op(Opcode::Add, &[vpdiff, step])?;
    vpdiff = b.op(Opcode::Select, &[b0m, add_full, vpdiff])?;
    let add_half = b.op(Opcode::Add, &[vpdiff, s1])?;
    vpdiff = b.op(Opcode::Select, &[b1m, add_half, vpdiff])?;
    let add_quarter = b.op(Opcode::Add, &[vpdiff, s2])?;
    vpdiff = b.op(Opcode::Select, &[b2, add_quarter, vpdiff])?;

    // sign handling: valpred ± vpdiff
    let sign = b.op(Opcode::Shr, &[delta, three])?;
    let signm = b.op(Opcode::And, &[sign, one])?;
    let vplus = b.op(Opcode::Add, &[valpred_in, vpdiff])?;
    let vminus = b.op(Opcode::Sub, &[valpred_in, vpdiff])?;
    let vsel = b.op(Opcode::Select, &[signm, vminus, vplus])?;

    // clamp to 16-bit range
    let vlo = b.op(Opcode::Max, &[vsel, vmin])?;
    let valpred = b.op(Opcode::Min, &[vlo, vmax])?;

    // index advance + step table lookup (memory barrier)
    let idx_addr = b.op(Opcode::Add, &[index_table, delta])?;
    let idx_delta = b.op(Opcode::Load, &[idx_addr])?;
    let step_addr = b.op(Opcode::Add, &[step_table, idx_delta])?;
    let next_step = b.op(Opcode::Load, &[step_addr])?;
    b.live_out(valpred)?;
    Ok((valpred, next_step))
}

/// `adpcm_decoder` (MediaBench). Critical block: **82 operations** —
/// three unrolled decode steps (the inner loop processes two 4-bit
/// samples per byte plus the carry step) and the output repack tail.
pub fn adpcm_decoder() -> Application {
    let mut b = BlockBuilder::new("adpcm_decoder_kernel").frequency(50_000);
    let packed = b.input("packed");
    let four = b.input("c4");
    let mask = b.input("c0f");
    let mut valpred = b.input("valpred_in");
    let mut step = b.input("step_in");
    // unpack two nibbles
    let hi = b.op(Opcode::Shr, &[packed, four]).expect("arity");
    let d0 = b.op(Opcode::And, &[hi, mask]).expect("arity");
    let d1 = b.op(Opcode::And, &[packed, mask]).expect("arity");
    for (i, delta) in [d0, d1].into_iter().enumerate() {
        let (v, s) = adpcm_step(&mut b, delta, valpred, step, &format!("d{i}")).expect("step");
        valpred = v;
        step = s;
    }
    // output repack
    let last = b.op(Opcode::Shl, &[valpred, four]).expect("arity");
    pad_to(&mut b, 82, &[last, valpred, step]);
    assemble("adpcm_decoder", b.build().expect("non-empty"), 0.50)
}

/// `adpcm_coder` (MediaBench). Critical block: **96 operations** — the
/// quantisation search (difference, sign split, three-step successive
/// approximation) followed by the same predictor update as the decoder.
pub fn adpcm_coder() -> Application {
    let mut b = BlockBuilder::new("adpcm_coder_kernel").frequency(50_000);
    let sample = b.input("sample");
    let one = b.input("k1");
    let two = b.input("k2");
    let three = b.input("k3");
    let mut valpred = b.input("valpred_in");
    let mut step = b.input("step_in");

    // diff = sample - valpred; sign = diff < 0; diff = |diff|
    let diff = b.op(Opcode::Sub, &[sample, valpred]).expect("arity");
    let zero = b.op(Opcode::Xor, &[diff, diff]).expect("arity");
    let sign = b.op(Opcode::Lt, &[diff, zero]).expect("arity");
    let adiff = b.op(Opcode::Abs, &[diff]).expect("arity");

    // successive approximation: three compare/subtract/accumulate steps
    let mut delta = zero;
    let mut rem = adiff;
    let mut stepk = step;
    for k in 0..3 {
        let ge = b.op(Opcode::Lt, &[stepk, rem]).expect("arity");
        let sub = b.op(Opcode::Sub, &[rem, stepk]).expect("arity");
        rem = b.op(Opcode::Select, &[ge, sub, rem]).expect("arity");
        let bit = b.op(Opcode::Shl, &[ge, two]).expect("arity");
        delta = b.op(Opcode::Or, &[delta, bit]).expect("arity");
        if k < 2 {
            stepk = b.op(Opcode::Shr, &[stepk, one]).expect("arity");
        }
    }
    // fold the sign bit into the code
    let signbit = b.op(Opcode::Shl, &[sign, three]).expect("arity");
    let code = b.op(Opcode::Or, &[delta, signbit]).expect("arity");
    b.live_out(code).expect("in-block id");

    // two predictor updates (current nibble + pipelined next)
    for i in 0..2 {
        let (v, s) = adpcm_step(&mut b, code, valpred, step, &format!("c{i}")).expect("step");
        valpred = v;
        step = s;
    }
    pad_to(&mut b, 96, &[valpred, step, code]);
    assemble("adpcm_coder", b.build().expect("non-empty"), 0.55)
}

/// One 8-point jfdctint-style forward DCT row: stage-1 butterflies,
/// even half with the shared rotator, full odd half with the five
/// z-terms. 44 operations.
fn fdct_row(b: &mut BlockBuilder, x: [NodeId; 8], c: &[NodeId; 9]) -> [NodeId; 8] {
    let (s0, d0) = butterfly(b, x[0], x[7]);
    let (s1, d1) = butterfly(b, x[1], x[6]);
    let (s2, d2) = butterfly(b, x[2], x[5]);
    let (s3, d3) = butterfly(b, x[3], x[4]);
    // even half
    let (t10, t13) = butterfly(b, s0, s3);
    let (t11, t12) = butterfly(b, s1, s2);
    let (out0, out4) = butterfly(b, t10, t11);
    let zsum = b.op(Opcode::Add, &[t12, t13]).expect("arity");
    let z1 = b.op(Opcode::Mul, &[zsum, c[0]]).expect("arity");
    let m13 = b.op(Opcode::Mul, &[t13, c[1]]).expect("arity");
    let out2 = b.op(Opcode::Add, &[z1, m13]).expect("arity");
    let m12 = b.op(Opcode::Mul, &[t12, c[2]]).expect("arity");
    let out6 = b.op(Opcode::Sub, &[z1, m12]).expect("arity");
    // odd half
    let z1o = b.op(Opcode::Add, &[d0, d3]).expect("arity");
    let z2o = b.op(Opcode::Add, &[d1, d2]).expect("arity");
    let z3o = b.op(Opcode::Add, &[d0, d2]).expect("arity");
    let z4o = b.op(Opcode::Add, &[d1, d3]).expect("arity");
    let z34 = b.op(Opcode::Add, &[z3o, z4o]).expect("arity");
    let z5 = b.op(Opcode::Mul, &[z34, c[3]]).expect("arity");
    let p0 = b.op(Opcode::Mul, &[d0, c[4]]).expect("arity");
    let p1 = b.op(Opcode::Mul, &[d1, c[5]]).expect("arity");
    let p2 = b.op(Opcode::Mul, &[d2, c[6]]).expect("arity");
    let p3 = b.op(Opcode::Mul, &[d3, c[7]]).expect("arity");
    let z1m = b.op(Opcode::Mul, &[z1o, c[8]]).expect("arity");
    let z2m = b.op(Opcode::Mul, &[z2o, c[3]]).expect("arity");
    let z3m = b.op(Opcode::Mul, &[z3o, c[4]]).expect("arity");
    let z4m = b.op(Opcode::Mul, &[z4o, c[5]]).expect("arity");
    let z3s = b.op(Opcode::Add, &[z3m, z5]).expect("arity");
    let z4s = b.op(Opcode::Add, &[z4m, z5]).expect("arity");
    let sum2 = |b: &mut BlockBuilder, a: NodeId, m: NodeId, z: NodeId| {
        let t = b.op(Opcode::Add, &[a, m]).expect("arity");
        b.op(Opcode::Add, &[t, z]).expect("arity")
    };
    let out7 = sum2(b, p0, z1m, z3s);
    let out5 = sum2(b, p1, z2m, z4s);
    let out3 = sum2(b, p2, z2m, z3s);
    let out1 = sum2(b, p3, z1m, z4s);
    [out0, out1, out2, out3, out4, out5, out6, out7]
}

/// `jpeg_fdct` (MediaBench cjpeg). Critical block: **112 operations**:
/// two unrolled 8-point forward-DCT rows (44 ops each, sharing the
/// cosine constants) fused with the per-coefficient quantisation tail
/// (bias, reciprocal multiply, descale) on the final row.
pub fn jpeg_fdct() -> Application {
    let mut b = BlockBuilder::new("jpeg_fdct_kernel").frequency(35_000);
    let coeffs: [NodeId; 9] = std::array::from_fn(|i| b.input(format!("c{i}")));
    let mut last = [coeffs[0]; 8];
    for row in 0..2 {
        let x: [NodeId; 8] = std::array::from_fn(|i| b.input(format!("r{row}_{i}")));
        last = fdct_row(&mut b, x, &coeffs);
    }
    let bias = b.input("bias");
    let shift = b.input("shift");
    for (i, y) in last.into_iter().enumerate() {
        let recip = b.input(format!("q{i}"));
        let biased = b.op(Opcode::Add, &[y, bias]).expect("arity");
        let scaled = b.op(Opcode::Mul, &[biased, recip]).expect("arity");
        let out = b.op(Opcode::Sar, &[scaled, shift]).expect("arity");
        b.live_out(out).expect("in-block id");
    }
    debug_assert_eq!(b.operation_count(), 2 * 44 + 3 * 8);
    assemble("jpeg_fdct", b.build().expect("non-empty"), 0.55)
}

/// `gsm_ltp` (MediaBench GSM 06.10 long-term predictor). Critical
/// block: **102 operations**: the lag search — nine cross-correlation
/// MAC chains over the reconstructed short-term residual window — the
/// running maximum reduction, and the gain normalisation tail.
pub fn gsm_ltp() -> Application {
    let mut b = BlockBuilder::new("gsm_ltp_kernel").frequency(30_000);
    let zero = b.input("acc0");
    let d: Vec<NodeId> = (0..5).map(|k| b.input(format!("d{k}"))).collect();
    let mut corr: Vec<NodeId> = Vec::new();
    for lag in 0..9 {
        let pairs: Vec<(NodeId, NodeId)> = d
            .iter()
            .enumerate()
            .map(|(k, &dk)| (dk, b.input(format!("dp{lag}_{k}"))))
            .collect();
        corr.push(mac_chain(&mut b, zero, &pairs));
    }
    let mut best = corr[0];
    for &c in &corr[1..] {
        best = b.op(Opcode::Max, &[best, c]).expect("arity");
    }
    // gain normalisation: margin subtract, rescale, clamp to the coder's
    // two-bit gain code range
    let margin = b.input("margin");
    let shift = b.input("shift");
    let (lo, hi) = (b.input("g_lo"), b.input("g_hi"));
    let adj = b.op(Opcode::Sub, &[best, margin]).expect("arity");
    let scaled = b.op(Opcode::Sar, &[adj, shift]).expect("arity");
    let gain = clamp(&mut b, scaled, lo, hi);
    b.live_out(gain).expect("in-block id");
    debug_assert_eq!(b.operation_count(), 9 * 10 + 8 + 4);
    assemble("gsm_ltp", b.build().expect("non-empty"), 0.50)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn critical_block_sizes_match_paper() {
        let dec = adpcm_decoder();
        assert_eq!(dec.critical_block().unwrap().operation_count(), 82);
        let cod = adpcm_coder();
        assert_eq!(cod.critical_block().unwrap().operation_count(), 96);
    }

    #[test]
    fn new_kernels_hit_their_sizes() {
        assert_eq!(jpeg_fdct().critical_block().unwrap().operation_count(), 112);
        assert_eq!(gsm_ltp().critical_block().unwrap().operation_count(), 102);
    }

    #[test]
    fn ltp_is_a_max_reduction_over_mac_chains() {
        let kernel_app = gsm_ltp();
        let kernel = kernel_app.critical_block().unwrap();
        let count = |oc: Opcode| {
            kernel
                .dag()
                .nodes()
                .filter(|(_, op)| op.opcode() == oc)
                .count()
        };
        assert_eq!(count(Opcode::Mul), 9 * 5);
        assert_eq!(count(Opcode::Max), 8 + 1); // reduction + clamp floor
    }

    #[test]
    fn kernels_contain_memory_barriers() {
        for app in [adpcm_decoder(), adpcm_coder()] {
            let kernel = app.critical_block().unwrap();
            let loads = kernel
                .dag()
                .nodes()
                .filter(|(_, op)| op.opcode() == Opcode::Load)
                .count();
            assert!(loads >= 2, "{}: expected step-table loads", app.name());
            // loads are not eligible for cuts
            for (id, op) in kernel.dag().nodes() {
                if op.opcode().is_memory() {
                    assert!(!kernel.eligible_nodes().contains(id));
                }
            }
        }
    }
}
