use isegen_graph::NodeId;
use isegen_ir::{Application, BasicBlock, BlockBuilder, LatencyModel, Opcode};

/// Extends a builder with a realistic post-processing chain (alternating
/// scale/blend/shift operations) until the block holds exactly `target`
/// operations.
///
/// Real kernels end in exactly this kind of fix-up code (rounding,
/// saturation, repacking), so the padded tail keeps the DFG plausible
/// while pinning the operation count to the paper's reported number.
///
/// # Panics
///
/// Panics if the builder already has more than `target` operations or if
/// `seeds` is empty.
pub(crate) fn pad_to(b: &mut BlockBuilder, target: usize, seeds: &[NodeId]) {
    assert!(!seeds.is_empty(), "padding needs at least one seed value");
    assert!(
        b.operation_count() <= target,
        "block already has {} ops, target {}",
        b.operation_count(),
        target
    );
    const CYCLE: [Opcode; 4] = [Opcode::Add, Opcode::Xor, Opcode::Shr, Opcode::Sub];
    let mut prev = seeds[0];
    let mut i = 0usize;
    while b.operation_count() < target {
        let op = CYCLE[i % CYCLE.len()];
        let other = seeds[i % seeds.len()];
        prev = b.op(op, &[prev, other]).expect("padding ops are binary");
        i += 1;
    }
}

/// Builds the memory-bound "rest of the program" block: address
/// arithmetic, loads and stores with almost no ISE opportunity. Its
/// frequency is chosen so the kernel block accounts for the fraction
/// `hot_fraction` of the application's cycles under the default latency
/// model.
pub(crate) fn support_block(name: &str, kernel: &BasicBlock, hot_fraction: f64) -> BasicBlock {
    assert!(
        (0.05..1.0).contains(&hot_fraction),
        "hot fraction {hot_fraction} outside (0.05, 1)"
    );
    let mut b = BlockBuilder::new(name);
    let base = b.input("base");
    let idx = b.input("i");
    // One load/compute/store strip — the archetypal pointer-chasing glue.
    // Kept smaller than the smallest kernel (5 ops < conven00's 6) so the
    // kernel is always the application's critical block.
    let addr = b.op(Opcode::Add, &[base, idx]).expect("binary");
    let v = b.op(Opcode::Load, &[addr]).expect("unary load");
    let acc = b.op(Opcode::Add, &[idx, v]).expect("binary");
    let t = b.op(Opcode::Shr, &[acc, idx]).expect("binary");
    b.op(Opcode::Store, &[addr, t]).expect("binary store");
    let mut block = b.build().expect("non-empty");

    let model = LatencyModel::paper_default();
    let kernel_cycles = kernel.frequency() as f64 * kernel.software_latency(&model) as f64;
    let support_latency = block.software_latency(&model) as f64;
    let support_cycles = kernel_cycles * (1.0 - hot_fraction) / hot_fraction;
    let freq = (support_cycles / support_latency).round().max(1.0) as u64;
    block.set_frequency(freq);
    block
}

/// Assembles kernel + support into an application where the kernel block
/// carries `hot_fraction` of the dynamic cycles.
pub(crate) fn assemble(name: &str, kernel: BasicBlock, hot_fraction: f64) -> Application {
    assemble_multi(name, kernel, hot_fraction, Vec::new())
}

/// Like [`assemble`], but with additional secondary blocks (e.g. a key
/// schedule that runs once per key while the kernel runs once per
/// message block). The kernel must stay the application's critical
/// block, so every extra block must be smaller than it.
pub(crate) fn assemble_multi(
    name: &str,
    kernel: BasicBlock,
    hot_fraction: f64,
    extras: Vec<BasicBlock>,
) -> Application {
    let support = support_block(&format!("{name}_rest"), &kernel, hot_fraction);
    let mut app = Application::new(name);
    for extra in &extras {
        assert!(
            extra.operation_count() < kernel.operation_count(),
            "{name}: secondary block {} ({} ops) would displace the kernel ({} ops)",
            extra.name(),
            extra.operation_count(),
            kernel.operation_count()
        );
    }
    app.push_block(kernel);
    for extra in extras {
        app.push_block(extra);
    }
    app.push_block(support);
    app
}

/// A multiply-accumulate chain: folds `acc ← acc + x·y` over every
/// `(x, y)` pair. Adds `2·pairs.len()` operations — the backbone of
/// every filter/correlation kernel in the suite.
pub(crate) fn mac_chain(
    b: &mut BlockBuilder,
    mut acc: NodeId,
    pairs: &[(NodeId, NodeId)],
) -> NodeId {
    for &(x, y) in pairs {
        let p = b.op(Opcode::Mul, &[x, y]).expect("binary");
        acc = b.op(Opcode::Add, &[acc, p]).expect("binary");
    }
    acc
}

/// A DSP butterfly: `(x + y, x − y)`. Adds 2 operations.
pub(crate) fn butterfly(b: &mut BlockBuilder, x: NodeId, y: NodeId) -> (NodeId, NodeId) {
    let sum = b.op(Opcode::Add, &[x, y]).expect("binary");
    let diff = b.op(Opcode::Sub, &[x, y]).expect("binary");
    (sum, diff)
}

/// Three-way XOR reduction, as in the SHA-2 Σ/σ mixers. Adds 2
/// operations.
pub(crate) fn xor3(b: &mut BlockBuilder, x: NodeId, y: NodeId, z: NodeId) -> NodeId {
    let xy = b.op(Opcode::Xor, &[x, y]).expect("binary");
    b.op(Opcode::Xor, &[xy, z]).expect("binary")
}

/// Saturating clamp `min(max(v, lo), hi)`. Adds 2 operations.
pub(crate) fn clamp(b: &mut BlockBuilder, v: NodeId, lo: NodeId, hi: NodeId) -> NodeId {
    let floored = b.op(Opcode::Max, &[v, lo]).expect("binary");
    b.op(Opcode::Min, &[floored, hi]).expect("binary")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_to_hits_exact_count() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let y = b.op(Opcode::Add, &[x, x]).unwrap();
        pad_to(&mut b, 17, &[y, x]);
        assert_eq!(b.operation_count(), 17);
        let block = b.build().unwrap();
        assert_eq!(block.operation_count(), 17);
    }

    #[test]
    fn support_block_hits_hot_fraction() {
        let mut b = BlockBuilder::new("k").frequency(1_000);
        let x = b.input("x");
        let m = b.op(Opcode::Mul, &[x, x]).unwrap();
        b.op(Opcode::Add, &[m, x]).unwrap();
        let kernel = b.build().unwrap();
        let model = LatencyModel::paper_default();
        for f in [0.3, 0.5, 0.8] {
            let support = support_block("rest", &kernel, f);
            let hot = kernel.frequency() as f64 * kernel.software_latency(&model) as f64;
            let cold = support.frequency() as f64 * support.software_latency(&model) as f64;
            let actual = hot / (hot + cold);
            assert!(
                (actual - f).abs() < 0.05,
                "requested {f}, achieved {actual}"
            );
        }
    }

    #[test]
    fn helpers_add_exact_op_counts() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let acc = mac_chain(&mut b, x, &[(x, y), (y, z), (z, x)]);
        assert_eq!(b.operation_count(), 6);
        let (s, d) = butterfly(&mut b, acc, y);
        assert_eq!(b.operation_count(), 8);
        let m = xor3(&mut b, s, d, z);
        assert_eq!(b.operation_count(), 10);
        clamp(&mut b, m, x, y);
        assert_eq!(b.operation_count(), 12);
        b.build().unwrap();
    }

    #[test]
    fn assemble_multi_keeps_kernel_critical() {
        let mut k = BlockBuilder::new("k").frequency(1_000);
        let x = k.input("x");
        let mut prev = x;
        for _ in 0..8 {
            prev = k.op(Opcode::Add, &[prev, x]).unwrap();
        }
        let kernel = k.build().unwrap();
        let mut e = BlockBuilder::new("extra").frequency(10);
        let y = e.input("y");
        e.op(Opcode::Xor, &[y, y]).unwrap();
        let extra = e.build().unwrap();
        let app = assemble_multi("t", kernel, 0.7, vec![extra]);
        assert_eq!(app.blocks().len(), 3);
        assert_eq!(app.critical_block().unwrap().name(), "k");
    }

    #[test]
    #[should_panic(expected = "already has")]
    fn pad_to_rejects_overshoot() {
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let y = b.op(Opcode::Add, &[x, x]).unwrap();
        let z = b.op(Opcode::Add, &[y, x]).unwrap();
        pad_to(&mut b, 1, &[z]);
    }
}
