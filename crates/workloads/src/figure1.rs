//! The paper's Figure 1 motivating example.

use isegen_graph::NodeId;
use isegen_ir::{Application, BlockBuilder, Opcode};

/// Node-level layout of the Figure 1 DFG, for experiments that need the
/// hand-drawn cuts of the figure.
#[derive(Debug, Clone)]
pub struct Figure1Layout {
    /// The six reusable 4-operation cores (the solid boundary of the
    /// figure), in construction order.
    pub cores: Vec<[NodeId; 4]>,
    /// The three 2-operation tails extending cores 0..3 into the largest
    /// cluster (the dotted boundary).
    pub tails: Vec<[NodeId; 2]>,
}

/// Builds the Figure 1 motivating DFG: six instances of a reusable
/// 4-operation cluster, three of which carry an extra 2-operation tail
/// forming the *largest* 6-operation cluster.
///
/// A merit-only search (no reuse awareness) picks the largest cluster —
/// three instances, 18 operations covered. Recognising the smaller
/// cluster's six instances covers 24 operations with the same single AFU:
/// "finding three instances of the largest ISE is not as effective as
/// finding a large ISE with six instances".
pub fn figure1() -> Application {
    figure1_annotated().0
}

/// [`figure1`] plus the node ids of the figure's two cluster shapes.
pub fn figure1_annotated() -> (Application, Figure1Layout) {
    let mut b = BlockBuilder::new("figure1_kernel").frequency(1_000);
    let mut cores: Vec<[NodeId; 4]> = Vec::new();
    let mut core_outs: Vec<NodeId> = Vec::new();
    for k in 0..6 {
        // the reusable 4-op core: (x^y) + z, shifted, re-xored
        let x = b.input(format!("x{k}"));
        let y = b.input(format!("y{k}"));
        let z = b.input(format!("z{k}"));
        let s = b.input(format!("s{k}"));
        let t = b.op(Opcode::Xor, &[x, y]).expect("arity");
        let u = b.op(Opcode::Add, &[t, z]).expect("arity");
        let v = b.op(Opcode::Shl, &[u, s]).expect("arity");
        let w = b.op(Opcode::Xor, &[v, t]).expect("arity");
        cores.push([t, u, v, w]);
        core_outs.push(w);
    }
    // three tails extend cores 0..3 into the largest cluster
    let mut tails: Vec<[NodeId; 2]> = Vec::new();
    for (k, &core_out) in core_outs.iter().enumerate().take(3) {
        let c = b.input(format!("c{k}"));
        let p = b.op(Opcode::Sub, &[core_out, c]).expect("arity");
        let q = b.op(Opcode::Sar, &[p, c]).expect("arity");
        tails.push([p, q]);
    }
    let mut app = Application::new("figure1");
    app.push_block(b.build().expect("non-empty"));
    (app, Figure1Layout { cores, tails })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_thirty_operations() {
        let app = figure1();
        let kernel = app.critical_block().unwrap();
        assert_eq!(kernel.operation_count(), 6 * 4 + 3 * 2);
    }

    #[test]
    fn layout_matches_structure() {
        let (app, layout) = figure1_annotated();
        let block = &app.blocks()[0];
        assert_eq!(layout.cores.len(), 6);
        assert_eq!(layout.tails.len(), 3);
        for core in &layout.cores {
            assert_eq!(block.opcode(core[0]), Opcode::Xor);
            assert_eq!(block.opcode(core[3]), Opcode::Xor);
        }
        for tail in &layout.tails {
            assert_eq!(block.opcode(tail[0]), Opcode::Sub);
            assert_eq!(block.opcode(tail[1]), Opcode::Sar);
        }
    }
}
