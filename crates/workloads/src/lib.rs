//! Benchmark DFG builders matching the ISEGEN paper's evaluation suite.
//!
//! The paper evaluates on EEMBC (`conven00`, `fbital00`, `viterb00`,
//! `autcor00`, `fft00`), MediaBench (`adpcm_coder`, `adpcm_decoder`) and
//! AES, reporting for each the operation count of its *critical basic
//! block* (in parentheses in Fig. 4): 6, 20, 23, 25, 82, 96, 104 and 696.
//!
//! MachSUIF and the original C sources are not available offline, so each
//! workload here is a hand-constructed, structurally faithful data-flow
//! graph of the same kernel computation with **exactly** the paper's
//! operation count (asserted by tests):
//!
//! * [`conven00`] — convolutional-encoder tap XOR network.
//! * [`fbital00`] — bit-allocation water-filling steps (4 regular carrier
//!   clusters).
//! * [`viterb00`] — Viterbi add-compare-select butterflies.
//! * [`autcor00`] — two parallel multiply-accumulate chains.
//! * [`adpcm_decoder`] / [`adpcm_coder`] — IMA-ADPCM predictor/quantiser
//!   logic with genuine memory barriers (step-table loads).
//! * [`fft00`] — ten radix-2 complex butterflies.
//! * [`aes`] — a full byte-sliced AES encryption data-flow (initial
//!   AddRoundKey, six full rounds with SubBytes/ShiftRows/MixColumns/
//!   AddRoundKey, final SubBytes + AddRoundKey): 696 operations with the
//!   regular, symmetric structure the paper's reusability study exploits.
//!
//! Beyond the paper's evaluation set, the **expansion corpus** pushes
//! block sizes into the thousands of operations:
//!
//! * [`aes128`] / [`aes256`] — the full ten-round (1020 ops) and
//!   fourteen-round (1452 ops) FIPS-197 encryption data-flows, each
//!   carrying its byte-sliced key-schedule block.
//! * [`sha256`] — the fully unrolled 64-round SHA-256 compression
//!   function with its message schedule (2296 ops).
//! * [`fir00`], [`idctrn01`] (EEMBC) and [`jpeg_fdct`], [`gsm_ltp`]
//!   (MediaBench) — four more real kernels built from the shared
//!   dataflow-builder helpers in `util`.
//! * [`synthetic_application`] — a parameterised layered-DFG family
//!   sweeping width/depth/fan-in/I/O pressure, with named members
//!   [`synth_tiny`] … [`synth_xl`] (64–2048 ops).
//!
//! Every workload is an [`Application`] with the hot kernel block plus a
//! memory-bound "rest of program" block, with frequencies chosen so the
//! kernel's share of total cycles is realistic for the benchmark (this
//! only scales the absolute speedup numbers, not who wins).
//!
//! The registry ([`all_workloads`], [`workloads_in_tiers`],
//! [`workloads_in`], [`paper_suite`]) carries size/category/provenance
//! metadata for every entry so drivers enumerate the corpus by tier
//! instead of hardcoding lists.
//!
//! [`figure1`] builds the paper's motivating example (large reusable ISE
//! vs. largest ISE), and [`random_application`] generates stress-test
//! inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crypto;
mod eembc;
mod figure1;
mod mediabench;
mod random;
mod registry;
mod util;

pub use crypto::{aes, aes128, aes256, sha256};
pub use eembc::{autcor00, conven00, fbital00, fft00, fir00, idctrn01, viterb00};
pub use figure1::{figure1, figure1_annotated, Figure1Layout};
pub use mediabench::{adpcm_coder, adpcm_decoder, gsm_ltp, jpeg_fdct};
pub use random::{
    random_application, synth_deep, synth_io, synth_tiny, synth_wide, synth_xl,
    synthetic_application, RandomWorkloadConfig, SyntheticConfig,
};
pub use registry::{
    all_workloads, mediabench_eembc_suite, paper_suite, workload_by_name, workloads_in,
    workloads_in_tiers, workloads_up_to, Category, SizeTier, WorkloadSpec,
};
