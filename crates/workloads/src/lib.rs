//! Benchmark DFG builders matching the ISEGEN paper's evaluation suite.
//!
//! The paper evaluates on EEMBC (`conven00`, `fbital00`, `viterb00`,
//! `autcor00`, `fft00`), MediaBench (`adpcm_coder`, `adpcm_decoder`) and
//! AES, reporting for each the operation count of its *critical basic
//! block* (in parentheses in Fig. 4): 6, 20, 23, 25, 82, 96, 104 and 696.
//!
//! MachSUIF and the original C sources are not available offline, so each
//! workload here is a hand-constructed, structurally faithful data-flow
//! graph of the same kernel computation with **exactly** the paper's
//! operation count (asserted by tests):
//!
//! * [`conven00`] — convolutional-encoder tap XOR network.
//! * [`fbital00`] — bit-allocation water-filling steps (4 regular carrier
//!   clusters).
//! * [`viterb00`] — Viterbi add-compare-select butterflies.
//! * [`autcor00`] — two parallel multiply-accumulate chains.
//! * [`adpcm_decoder`] / [`adpcm_coder`] — IMA-ADPCM predictor/quantiser
//!   logic with genuine memory barriers (step-table loads).
//! * [`fft00`] — ten radix-2 complex butterflies.
//! * [`aes`] — a full byte-sliced AES encryption data-flow (initial
//!   AddRoundKey, six full rounds with SubBytes/ShiftRows/MixColumns/
//!   AddRoundKey, final SubBytes + AddRoundKey): 696 operations with the
//!   regular, symmetric structure the paper's reusability study exploits.
//!
//! Every workload is an [`Application`] with the hot kernel block plus a
//! memory-bound "rest of program" block, with frequencies chosen so the
//! kernel's share of total cycles is realistic for the benchmark (this
//! only scales the absolute speedup numbers, not who wins).
//!
//! [`figure1`] builds the paper's motivating example (large reusable ISE
//! vs. largest ISE), and [`random_application`] generates stress-test
//! inputs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crypto;
mod eembc;
mod figure1;
mod mediabench;
mod random;
mod registry;
mod util;

pub use crypto::aes;
pub use eembc::{autcor00, conven00, fbital00, fft00, viterb00};
pub use figure1::{figure1, figure1_annotated, Figure1Layout};
pub use mediabench::{adpcm_coder, adpcm_decoder};
pub use random::{random_application, RandomWorkloadConfig};
pub use registry::{all_workloads, mediabench_eembc_suite, workload_by_name, WorkloadSpec};
