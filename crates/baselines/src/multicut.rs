use crate::{enumerate_cuts, BaselineError, ExactConfig};
use isegen_core::{BlockContext, Cut, Ise, IseConfig, IseInstance, IseSelection};
use isegen_ir::{Application, LatencyModel};

/// Exact multiple-cut identification: enumerate every feasible cut of
/// every block, then select the jointly optimal set of at most
/// [`IseConfig::max_ises`] node-disjoint cuts maximising the
/// application-level saving, by branch-and-bound.
///
/// Cuts from different blocks never conflict; cuts within one block must
/// be node-disjoint. The paper reports this method optimal but limited to
/// small blocks; [`BaselineError::TooLarge`] /
/// [`BaselineError::TooManyCuts`] reproduce that limit.
///
/// # Errors
///
/// Propagates the enumeration errors of [`enumerate_cuts`].
pub fn run_exact(
    app: &Application,
    model: &LatencyModel,
    config: &IseConfig,
    exact: &ExactConfig,
) -> Result<IseSelection, BaselineError> {
    let blocks = app.blocks();
    let contexts: Vec<BlockContext<'_>> =
        blocks.iter().map(|b| BlockContext::new(b, model)).collect();
    let total_sw_cycles = app.total_software_latency(model);

    // Candidate pool: (block index, cut, dynamic saving).
    let mut pool: Vec<(usize, Cut, u64)> = Vec::new();
    for (bi, ctx) in contexts.iter().enumerate() {
        if blocks[bi].frequency() == 0 {
            continue;
        }
        for cut in enumerate_cuts(ctx, config.io, exact, None)? {
            let saving = blocks[bi].frequency() * cut.saved_cycles();
            if saving > 0 {
                pool.push((bi, cut, saving));
            }
        }
    }
    // Highest saving first: good incumbents early, tight bounds.
    pool.sort_by_key(|entry| std::cmp::Reverse(entry.2));
    // Suffix table of the best possible remaining savings (ignoring
    // disjointness) for the bound.
    let mut suffix_best: Vec<u64> = vec![0; pool.len() + 1];
    for i in (0..pool.len()).rev() {
        suffix_best[i] = suffix_best[i + 1].max(pool[i].2);
    }

    struct Bb<'p> {
        pool: &'p [(usize, Cut, u64)],
        suffix_best: &'p [u64],
        max_ises: usize,
        chosen: Vec<usize>,
        best: (u64, Vec<usize>),
    }
    impl Bb<'_> {
        fn saving_of(&self, chosen: &[usize]) -> u64 {
            chosen.iter().map(|&i| self.pool[i].2).sum()
        }
        fn descend(&mut self, idx: usize, saving: u64) {
            if saving > self.best.0 {
                self.best = (saving, self.chosen.clone());
            }
            if idx >= self.pool.len() || self.chosen.len() >= self.max_ises {
                return;
            }
            // Bound: the remaining slots can at best each take the best
            // remaining single saving.
            let slots = (self.max_ises - self.chosen.len()) as u64;
            if saving + slots * self.suffix_best[idx] <= self.best.0 {
                return;
            }
            // Take idx if disjoint with everything chosen in its block.
            let (bi, cut, s) = &self.pool[idx];
            let compatible = self.chosen.iter().all(|&j| {
                let (bj, cj, _) = &self.pool[j];
                bj != bi || cj.nodes().is_disjoint(cut.nodes())
            });
            if compatible {
                self.chosen.push(idx);
                self.descend(idx + 1, saving + s);
                self.chosen.pop();
            }
            // Skip idx.
            self.descend(idx + 1, saving);
        }
    }

    let mut bb = Bb {
        pool: &pool,
        suffix_best: &suffix_best,
        max_ises: config.max_ises,
        chosen: Vec::new(),
        best: (0, Vec::new()),
    };
    bb.descend(0, 0);
    let (saved_cycles, chosen) = bb.best.clone();
    debug_assert_eq!(saved_cycles, bb.saving_of(&chosen));

    let ises = chosen
        .into_iter()
        .map(|i| {
            let (bi, cut, _) = &pool[i];
            Ise {
                block_index: *bi,
                cut: cut.clone(),
                instances: vec![IseInstance {
                    block_index: *bi,
                    nodes: cut.nodes().clone(),
                }],
                saved_per_execution: cut.saved_cycles(),
            }
        })
        .collect();

    Ok(IseSelection {
        ises,
        total_sw_cycles,
        saved_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_iterative;
    use isegen_core::IoConstraints;
    use isegen_ir::{BlockBuilder, Opcode};

    fn twin_app() -> Application {
        let mut b = BlockBuilder::new("twin").frequency(50);
        for k in 0..2 {
            let (p, q) = (b.input(format!("p{k}")), b.input(format!("q{k}")));
            let m = b.op(Opcode::Mul, &[p, q]).unwrap();
            let s = b.op(Opcode::Add, &[m, p]).unwrap();
            b.op(Opcode::Shl, &[s, q]).unwrap();
        }
        let mut app = Application::new("twins");
        app.push_block(b.build().unwrap());
        app
    }

    #[test]
    fn exact_at_least_matches_iterative() {
        let app = twin_app();
        let model = LatencyModel::paper_default();
        let config = IseConfig {
            io: IoConstraints::new(4, 2),
            max_ises: 2,
            reuse_matching: false,
        };
        let exact_cfg = ExactConfig::default();
        let joint = run_exact(&app, &model, &config, &exact_cfg).unwrap();
        let iterative = run_iterative(&app, &model, &config, &exact_cfg).unwrap();
        assert!(
            joint.saved_cycles >= iterative.saved_cycles,
            "joint {} < iterative {}",
            joint.saved_cycles,
            iterative.saved_cycles
        );
        assert!(joint.speedup() >= 1.0);
    }

    #[test]
    fn respects_budget() {
        let app = twin_app();
        let model = LatencyModel::paper_default();
        let config = IseConfig {
            io: IoConstraints::new(4, 2),
            max_ises: 1,
            reuse_matching: false,
        };
        let sel = run_exact(&app, &model, &config, &ExactConfig::default()).unwrap();
        assert!(sel.ises.len() <= 1);
    }

    #[test]
    fn chosen_cuts_are_disjoint() {
        let app = twin_app();
        let model = LatencyModel::paper_default();
        let config = IseConfig {
            io: IoConstraints::new(2, 1),
            max_ises: 4,
            reuse_matching: false,
        };
        let sel = run_exact(&app, &model, &config, &ExactConfig::default()).unwrap();
        for i in 0..sel.ises.len() {
            for j in (i + 1)..sel.ises.len() {
                if sel.ises[i].block_index == sel.ises[j].block_index {
                    assert!(sel.ises[i].cut.nodes().is_disjoint(sel.ises[j].cut.nodes()));
                }
            }
        }
    }
}
