use std::error::Error;
use std::fmt;

/// Failure modes of the exhaustive baselines.
///
/// The paper reports that the exact algorithms "could not run" on large
/// blocks (AES's 696-node block defeats both); these errors are how that
/// manifests here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BaselineError {
    /// The block has more searchable nodes than the configured limit.
    TooLarge {
        /// Number of eligible nodes in the block.
        nodes: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The search exceeded its step budget before completing, so no
    /// optimality claim can be made.
    BudgetExhausted {
        /// The configured step budget.
        steps: u64,
    },
    /// Cut enumeration overflowed the configured collection limit.
    TooManyCuts {
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::TooLarge { nodes, limit } => {
                write!(
                    f,
                    "block has {nodes} searchable nodes, exact limit is {limit}"
                )
            }
            BaselineError::BudgetExhausted { steps } => {
                write!(f, "exhaustive search exceeded its budget of {steps} steps")
            }
            BaselineError::TooManyCuts { limit } => {
                write!(f, "cut enumeration exceeded the limit of {limit} cuts")
            }
        }
    }
}

impl Error for BaselineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = BaselineError::TooLarge {
            nodes: 696,
            limit: 40,
        };
        assert_eq!(
            e.to_string(),
            "block has 696 searchable nodes, exact limit is 40"
        );
        let e = BaselineError::BudgetExhausted { steps: 10 };
        assert!(e.to_string().contains("10 steps"));
        let e = BaselineError::TooManyCuts { limit: 5 };
        assert!(e.to_string().contains("5 cuts"));
    }
}
