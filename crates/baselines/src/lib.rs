//! Baseline ISE identification algorithms the ISEGEN paper compares
//! against (§5):
//!
//! * [`exact_single_cut`] — provably optimal single-cut identification by
//!   exhaustive search with convexity/I-O/bound pruning, after Atasu,
//!   Pozzi & Ienne (DAC 2003). Practical only for small blocks; returns
//!   [`BaselineError`] beyond its node/step budget, mirroring the paper's
//!   observation that the exact methods cannot run on large blocks.
//! * [`run_iterative`] — "Iterative exact single-cut identification":
//!   repeatedly commits the exact best cut and forbids its nodes,
//!   `N_ISE` times.
//! * [`run_exact`] — "Exact multiple-cut identification": enumerates every
//!   feasible cut and selects the jointly optimal set of up to `N_ISE`
//!   node-disjoint cuts by branch-and-bound.
//! * [`GeneticFinder`] / [`run_genetic`] — the genetic formulation of
//!   Biswas et al. (DAC 2004): per-block bit-vector chromosomes, penalty
//!   fitness, tournament selection, uniform crossover, mutation, elitism.
//!   Stochastic (seeded for reproducibility) and orders of magnitude
//!   slower than ISEGEN, as in the paper.
//!
//! All baselines plug into the same whole-application driver
//! ([`isegen_core::generate_with`]) as ISEGEN, so Fig. 4/6 comparisons are
//! apples-to-apples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod exact;
mod genetic;
mod iterative;
mod multicut;

pub use error::BaselineError;
pub use exact::{enumerate_cuts, exact_single_cut, ExactConfig};
pub use genetic::{run_genetic, GeneticConfig, GeneticFinder};
pub use iterative::{run_iterative, IterativeExactFinder};
pub use multicut::run_exact;
