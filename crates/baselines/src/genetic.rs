use isegen_core::{
    BlockContext, Cut, CutFinder, Generator, IoConstraints, IseConfig, IseSelection,
};
use isegen_graph::{convex, NodeId, NodeSet};
use isegen_ir::{Application, LatencyModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the genetic ISE identification baseline (after Biswas et
/// al., DAC 2004).
///
/// The chromosome is one inclusion bit per searchable node; fitness is
/// the cut merit minus penalties for I/O and convexity violations; the
/// engine is a conventional generational GA with tournament selection,
/// uniform crossover, per-bit mutation and elitism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeneticConfig {
    /// Population size.
    pub population: usize,
    /// Number of generations.
    pub generations: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Probability of recombining two parents (else clone the fitter).
    pub crossover_rate: f64,
    /// Expected number of flipped bits per chromosome per generation.
    pub mutation_bits: f64,
    /// Number of elites copied unchanged.
    pub elitism: usize,
    /// Expected number of set bits in an initial random chromosome. The
    /// per-bit probability adapts to the block size (`init_bits / len`,
    /// capped at 0.5) so the GA starts near the legal region even on
    /// 696-node blocks.
    pub init_bits: f64,
    /// Fitness penalty per violated I/O port.
    pub io_penalty: f64,
    /// Fitness penalty per convexity-violating witness node.
    pub convexity_penalty: f64,
    /// RNG seed (the GA is stochastic; the paper notes multiple runs may
    /// yield different solutions — fix the seed for reproducibility).
    pub seed: u64,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        GeneticConfig {
            population: 64,
            generations: 200,
            tournament: 3,
            crossover_rate: 0.9,
            mutation_bits: 1.5,
            elitism: 2,
            init_bits: 6.0,
            io_penalty: 25.0,
            convexity_penalty: 10.0,
            seed: 0xC0FFEE,
        }
    }
}

/// [`CutFinder`] running the genetic baseline on one block at a time.
#[derive(Debug, Clone)]
pub struct GeneticFinder {
    cfg: GeneticConfig,
    rng: StdRng,
}

impl GeneticFinder {
    /// Creates a finder; the RNG is seeded from
    /// [`GeneticConfig::seed`] and persists across [`CutFinder::find_cut`]
    /// calls.
    pub fn new(cfg: GeneticConfig) -> Self {
        GeneticFinder {
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &GeneticConfig {
        &self.cfg
    }
}

impl Default for GeneticFinder {
    fn default() -> Self {
        GeneticFinder::new(GeneticConfig::default())
    }
}

struct Individual {
    genes: Vec<bool>,
    fitness: f64,
    legal_merit: Option<f64>,
}

impl CutFinder for GeneticFinder {
    fn find_cut(
        &mut self,
        ctx: &BlockContext<'_>,
        io: IoConstraints,
        forbidden: Option<&NodeSet>,
    ) -> Cut {
        let mut free = ctx.eligible().clone();
        if let Some(f) = forbidden {
            free.subtract(f);
        }
        let free_nodes: Vec<NodeId> = free.iter().collect();
        let len = free_nodes.len();
        if len == 0 {
            return Cut::empty(ctx.node_count());
        }
        let cfg = self.cfg;
        let n = ctx.node_count();

        let evaluate = |genes: &[bool]| -> (f64, Option<f64>, NodeSet) {
            let nodes = NodeSet::from_ids(
                n,
                genes
                    .iter()
                    .zip(&free_nodes)
                    .filter(|(g, _)| **g)
                    .map(|(_, &v)| v),
            );
            if nodes.is_empty() {
                return (0.0, None, nodes);
            }
            let cut = Cut::evaluate(ctx, nodes.clone());
            let io_viol = io.violation(cut.input_count(), cut.output_count());
            let cvx_viol = convex::violators(ctx.reach(), &nodes).len() as u32;
            let fitness = cut.merit()
                - cfg.io_penalty * io_viol as f64
                - cfg.convexity_penalty * cvx_viol as f64;
            let legal = if io_viol == 0 && cvx_viol == 0 && cut.merit() > 0.0 {
                Some(cut.merit())
            } else {
                None
            };
            (fitness, legal, nodes)
        };

        let mut best_legal: Option<(f64, NodeSet)> = None;
        let consider = |legal: Option<f64>, nodes: &NodeSet, best: &mut Option<(f64, NodeSet)>| {
            if let Some(m) = legal {
                let better = best.as_ref().is_none_or(|(bm, _)| m > *bm);
                if better {
                    *best = Some((m, nodes.clone()));
                }
            }
        };

        // Initial population.
        let density = (cfg.init_bits / len as f64).min(0.5);
        let mut pop: Vec<Individual> = (0..cfg.population)
            .map(|_| {
                let genes: Vec<bool> = (0..len).map(|_| self.rng.gen_bool(density)).collect();
                let (fitness, legal, nodes) = evaluate(&genes);
                consider(legal, &nodes, &mut best_legal);
                Individual {
                    genes,
                    fitness,
                    legal_merit: legal,
                }
            })
            .collect();

        for _gen in 0..cfg.generations {
            // total_cmp: fitness can be NaN under adversarial gain
            // weights, and partial_cmp().unwrap() would panic there.
            pop.sort_by(|a, b| b.fitness.total_cmp(&a.fitness));
            let mut next: Vec<Individual> = Vec::with_capacity(cfg.population);
            for elite in pop.iter().take(cfg.elitism) {
                next.push(Individual {
                    genes: elite.genes.clone(),
                    fitness: elite.fitness,
                    legal_merit: elite.legal_merit,
                });
            }
            while next.len() < cfg.population {
                let pa = self.tournament(&pop);
                let pb = self.tournament(&pop);
                let mut child: Vec<bool> = if self.rng.gen_bool(cfg.crossover_rate) {
                    (0..len)
                        .map(|i| {
                            if self.rng.gen_bool(0.5) {
                                pop[pa].genes[i]
                            } else {
                                pop[pb].genes[i]
                            }
                        })
                        .collect()
                } else {
                    let fitter = if pop[pa].fitness >= pop[pb].fitness {
                        pa
                    } else {
                        pb
                    };
                    pop[fitter].genes.clone()
                };
                let p_flip = (cfg.mutation_bits / len as f64).min(1.0);
                for g in child.iter_mut() {
                    if self.rng.gen_bool(p_flip) {
                        *g = !*g;
                    }
                }
                let (fitness, legal, nodes) = evaluate(&child);
                consider(legal, &nodes, &mut best_legal);
                next.push(Individual {
                    genes: child,
                    fitness,
                    legal_merit: legal,
                });
            }
            pop = next;
        }

        match best_legal {
            Some((_, nodes)) => Cut::evaluate(ctx, nodes),
            None => Cut::empty(n),
        }
    }

    fn name(&self) -> &str {
        "genetic"
    }
}

impl GeneticFinder {
    fn tournament(&mut self, pop: &[Individual]) -> usize {
        let mut best = self.rng.gen_range(0..pop.len());
        for _ in 1..self.cfg.tournament {
            let other = self.rng.gen_range(0..pop.len());
            if pop[other].fitness > pop[best].fitness {
                best = other;
            }
        }
        best
    }
}

/// Runs the genetic baseline on a whole application under the standard
/// Problem-2 driver.
///
/// [`IseConfig::reuse_matching`] selects the *deployment* model (one AFU
/// per instance vs. one AFU covering every isomorphic instance) and is
/// honoured as given, so ISEGEN-vs-Genetic comparisons isolate cut
/// *quality*: the GA's stochastic, unaligned cuts recur less often than
/// ISEGEN's directionally-grown ones, which is the paper's AES story.
pub fn run_genetic(
    app: &Application,
    model: &LatencyModel,
    config: &IseConfig,
    genetic: &GeneticConfig,
) -> IseSelection {
    Generator::new(*config)
        .finder(GeneticFinder::new(*genetic))
        .run_sequential(app, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::{BasicBlock, BlockBuilder, Opcode};

    fn dotprod() -> BasicBlock {
        let mut b = BlockBuilder::new("dot").frequency(10);
        let (a, b_, c, d) = (b.input("a"), b.input("b"), b.input("c"), b.input("d"));
        let m1 = b.op(Opcode::Mul, &[a, b_]).unwrap();
        let m2 = b.op(Opcode::Mul, &[c, d]).unwrap();
        b.op(Opcode::Add, &[m1, m2]).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn finds_the_optimum_on_a_small_block() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let mut finder = GeneticFinder::default();
        let cut = finder.find_cut(&ctx, IoConstraints::new(4, 2), None);
        // optimum is the whole 3-op cluster, merit 7 - 1.15
        assert_eq!(cut.nodes().len(), 3);
        assert!((cut.merit() - (7.0 - 1.15)).abs() < 1e-9);
    }

    #[test]
    fn results_are_always_legal() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        for (i, o) in [(2u32, 1u32), (3, 1), (4, 2)] {
            let io = IoConstraints::new(i, o);
            let mut finder = GeneticFinder::default();
            let cut = finder.find_cut(&ctx, io, None);
            if !cut.is_empty() {
                assert!(cut.satisfies_io(io), "{io}");
                assert!(ctx.is_convex(cut.nodes()), "{io}");
            }
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let io = IoConstraints::new(4, 2);
        let a = GeneticFinder::default().find_cut(&ctx, io, None);
        let b = GeneticFinder::default().find_cut(&ctx, io, None);
        assert_eq!(a, b);
    }

    #[test]
    fn application_driver_integration() {
        let mut app = Application::new("a");
        app.push_block(dotprod());
        let model = LatencyModel::paper_default();
        let config = IseConfig {
            io: IoConstraints::new(4, 2),
            max_ises: 2,
            reuse_matching: false,
        };
        let sel = run_genetic(&app, &model, &config, &GeneticConfig::default());
        assert!(!sel.ises.is_empty());
        assert!(sel.speedup() > 1.0);
    }
}
