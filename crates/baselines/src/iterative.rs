use crate::{exact_single_cut, BaselineError, ExactConfig};
use isegen_core::{
    BlockContext, Cut, CutFinder, Generator, IoConstraints, IseConfig, IseSelection,
};
use isegen_graph::NodeSet;
use isegen_ir::{Application, LatencyModel};

/// [`CutFinder`] wrapping the exact single-cut search — the paper's
/// "Iterative exact single-cut identification" when run under the
/// Problem-2 driver.
///
/// Errors from the underlying exhaustive search are recorded and
/// retrievable via [`IterativeExactFinder::error`]; the driver sees an
/// empty cut and stops.
#[derive(Debug, Clone)]
pub struct IterativeExactFinder {
    cfg: ExactConfig,
    error: Option<BaselineError>,
}

impl IterativeExactFinder {
    /// Creates a finder with the given search budgets.
    pub fn new(cfg: ExactConfig) -> Self {
        IterativeExactFinder { cfg, error: None }
    }

    /// The first error the exhaustive search hit, if any.
    pub fn error(&self) -> Option<BaselineError> {
        self.error
    }
}

impl Default for IterativeExactFinder {
    fn default() -> Self {
        IterativeExactFinder::new(ExactConfig::default())
    }
}

impl CutFinder for IterativeExactFinder {
    fn find_cut(
        &mut self,
        ctx: &BlockContext<'_>,
        io: IoConstraints,
        forbidden: Option<&NodeSet>,
    ) -> Cut {
        match exact_single_cut(ctx, io, &self.cfg, forbidden) {
            Ok(cut) => cut,
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
                Cut::empty(ctx.node_count())
            }
        }
    }

    fn name(&self) -> &str {
        "iterative"
    }
}

/// Runs the iterative exact baseline on a whole application: `N_ISE`
/// successive optimal single cuts, most-promising block first.
/// [`IseConfig::reuse_matching`] is honoured as given.
///
/// # Errors
///
/// Propagates the first [`BaselineError`] of the underlying search (block
/// too large or budget exhausted), in which case no result is usable —
/// this is the paper's "the optimal algorithms could not run" case.
pub fn run_iterative(
    app: &Application,
    model: &LatencyModel,
    config: &IseConfig,
    exact: &ExactConfig,
) -> Result<IseSelection, BaselineError> {
    let mut gen = Generator::new(*config).finder(IterativeExactFinder::new(*exact));
    let sel = gen.run_sequential(app, model);
    match gen.finder_ref().error() {
        Some(e) => Err(e),
        None => Ok(sel),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::{BlockBuilder, Opcode};

    fn twin_app() -> Application {
        let mut b = BlockBuilder::new("twin").frequency(100);
        for k in 0..2 {
            let (p, q, r, s) = (
                b.input(format!("p{k}")),
                b.input(format!("q{k}")),
                b.input(format!("r{k}")),
                b.input(format!("s{k}")),
            );
            let m1 = b.op(Opcode::Mul, &[p, q]).unwrap();
            let m2 = b.op(Opcode::Mul, &[r, s]).unwrap();
            b.op(Opcode::Add, &[m1, m2]).unwrap();
        }
        let mut app = Application::new("twins");
        app.push_block(b.build().unwrap());
        app
    }

    #[test]
    fn two_iterations_cover_both_clusters() {
        let app = twin_app();
        let model = LatencyModel::paper_default();
        let config = IseConfig {
            io: IoConstraints::new(4, 2),
            max_ises: 2,
            reuse_matching: false,
        };
        let sel = run_iterative(&app, &model, &config, &ExactConfig::default()).unwrap();
        assert_eq!(sel.ises.len(), 2);
        assert!(sel.speedup() > 1.0);
        // the two cuts must be node-disjoint
        assert!(sel.ises[0].cut.nodes().is_disjoint(sel.ises[1].cut.nodes()));
    }

    #[test]
    fn too_large_propagates() {
        let app = twin_app();
        let model = LatencyModel::paper_default();
        let config = IseConfig {
            io: IoConstraints::new(4, 2),
            max_ises: 1,
            reuse_matching: false,
        };
        let exact = ExactConfig {
            max_nodes: 3,
            ..ExactConfig::default()
        };
        assert!(matches!(
            run_iterative(&app, &model, &config, &exact),
            Err(BaselineError::TooLarge { .. })
        ));
    }
}
