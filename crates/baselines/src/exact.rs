use crate::BaselineError;
use isegen_core::{BlockContext, Cut, IoConstraints};
use isegen_graph::{NodeId, NodeSet};

/// Budgets for the exhaustive search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactConfig {
    /// Maximum number of searchable (eligible, unforbidden) nodes; blocks
    /// beyond this are rejected up front. The paper observed the exact
    /// multiple-cut method topping out around 25 nodes and the iterative
    /// variant around 100 on their machine; the default here admits the
    /// MediaBench/EEMBC blocks and rejects AES.
    pub max_nodes: usize,
    /// Maximum number of search-tree nodes to expand.
    pub max_steps: u64,
    /// Maximum number of cuts [`enumerate_cuts`] may collect.
    pub max_cuts: usize,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_nodes: 120,
            max_steps: 40_000_000,
            max_cuts: 2_000_000,
        }
    }
}

/// Per-node bookkeeping of the branch-and-bound search.
struct Search<'s, 'c, 'a> {
    ctx: &'s BlockContext<'a>,
    io: IoConstraints,
    cfg: ExactConfig,
    /// Eligible free nodes in topological order — the decision sequence.
    order: Vec<NodeId>,
    /// Suffix sums of software latency over `order` (merit upper bound).
    suffix_sw: Vec<u64>,
    cut: NodeSet,
    /// Everything decided-out: pre-excluded (ineligible/forbidden) plus
    /// search-excluded nodes.
    excluded: NodeSet,
    /// Number of edges from each excluded node into the cut; an excluded
    /// node with a positive count is a *definite input*.
    supplies_cut: Vec<u32>,
    /// Number of decided-excluded consumers of each node; a cut node with
    /// a positive count (or live-out) is a *definite output*.
    exc_cons: Vec<u32>,
    definite_in: u32,
    definite_out: u32,
    sw_sum: u64,
    steps: u64,
    best: Option<(f64, Cut)>,
    /// When collecting: every legal positive-merit cut found.
    collect: Option<Vec<Cut>>,
    _phantom: std::marker::PhantomData<&'c ()>,
}

impl<'s, 'c, 'a> Search<'s, 'c, 'a> {
    fn new(
        ctx: &'s BlockContext<'a>,
        io: IoConstraints,
        cfg: ExactConfig,
        forbidden: Option<&NodeSet>,
        collect: bool,
    ) -> Result<Self, BaselineError> {
        let n = ctx.node_count();
        let mut free = ctx.eligible().clone();
        if let Some(f) = forbidden {
            free.subtract(f);
        }
        let mut order: Vec<NodeId> = free.iter().collect();
        order.sort_by_key(|&v| ctx.topo().rank(v));
        if order.len() > cfg.max_nodes {
            return Err(BaselineError::TooLarge {
                nodes: order.len(),
                limit: cfg.max_nodes,
            });
        }
        let mut suffix_sw = vec![0u64; order.len() + 1];
        for (i, &v) in order.iter().enumerate().rev() {
            suffix_sw[i] = suffix_sw[i + 1] + ctx.sw_cycles(v) as u64;
        }
        let mut excluded = NodeSet::full(n);
        excluded.subtract(&free);
        // Seed the excluded-consumer counters with the *pre*-excluded
        // nodes (ineligible ops, forbidden nodes): a cut node feeding a
        // memory operation or a previous ISE's node is an output just as
        // surely as one feeding a search-excluded node.
        let mut exc_cons = vec![0u32; n];
        let dag = ctx.block().dag();
        for w in excluded.iter() {
            for &p in dag.preds(w) {
                exc_cons[p.index()] += 1;
            }
        }
        Ok(Search {
            ctx,
            io,
            cfg,
            order,
            suffix_sw,
            cut: NodeSet::new(n),
            excluded,
            supplies_cut: vec![0; n],
            exc_cons,
            definite_in: 0,
            definite_out: 0,
            sw_sum: 0,
            steps: 0,
            best: None,
            collect: if collect { Some(Vec::new()) } else { None },
            _phantom: std::marker::PhantomData,
        })
    }

    fn run(&mut self) -> Result<(), BaselineError> {
        // `below_cut` = union of descendants of cut nodes; passed by value
        // so backtracking is a no-op.
        let below_cut = NodeSet::new(self.ctx.node_count());
        self.descend(0, below_cut)
    }

    fn descend(&mut self, depth: usize, below_cut: NodeSet) -> Result<(), BaselineError> {
        self.steps += 1;
        if self.steps > self.cfg.max_steps {
            return Err(BaselineError::BudgetExhausted {
                steps: self.cfg.max_steps,
            });
        }
        // I/O pruning: definite counts only ever grow along a branch.
        if self.definite_in > self.io.max_inputs() || self.definite_out > self.io.max_outputs() {
            return Ok(());
        }
        if depth == self.order.len() {
            self.leaf()?;
            return Ok(());
        }
        // Merit-bound pruning: even if every remaining node joined for
        // free, could this branch beat the incumbent?
        if let Some((best_merit, _)) = &self.best {
            if self.collect.is_none() {
                let optimistic = (self.sw_sum + self.suffix_sw[depth]) as f64;
                if optimistic <= *best_merit {
                    return Ok(());
                }
            }
        }
        let v = self.order[depth];

        // Branch 1: include v, unless it would break convexity. A new
        // violation needs an excluded node w on a path cut ⇝ w ⇝ v; all
        // such w are already decided (they precede v topologically).
        let convex_ok = {
            let reach = self.ctx.reach();
            let mut witness = reach.ancestors(v).clone();
            witness.intersect_with(&self.excluded);
            witness.intersect_with(&below_cut);
            witness.is_empty()
        };
        if convex_ok {
            let undo = self.include(v);
            let mut below2 = below_cut.clone();
            below2.union_with(self.ctx.reach().descendants(v));
            self.descend(depth + 1, below2)?;
            self.undo_include(v, undo);
        }

        // Branch 2: exclude v.
        let undo = self.exclude(v);
        self.descend(depth + 1, below_cut)?;
        self.undo_exclude(v, undo);
        Ok(())
    }

    /// Adds `v` to the cut; returns the counter deltas for undo.
    fn include(&mut self, v: NodeId) -> (u32, u32) {
        let dag = self.ctx.block().dag();
        let mut d_in = 0u32;
        let mut d_out = 0u32;
        let preds = dag.preds(v);
        for (i, &p) in preds.iter().enumerate() {
            if preds[..i].contains(&p) {
                continue;
            }
            if self.excluded.contains(p) {
                let mult = preds.iter().filter(|&&q| q == p).count() as u32;
                if self.supplies_cut[p.index()] == 0 {
                    d_in += 1;
                }
                self.supplies_cut[p.index()] += mult;
            }
        }
        if self.ctx.block().is_live_out(v) || self.exc_cons[v.index()] > 0 {
            d_out += 1;
        }
        self.cut.insert(v);
        self.sw_sum += self.ctx.sw_cycles(v) as u64;
        self.definite_in += d_in;
        self.definite_out += d_out;
        (d_in, d_out)
    }

    fn undo_include(&mut self, v: NodeId, (d_in, d_out): (u32, u32)) {
        let dag = self.ctx.block().dag();
        let preds = dag.preds(v);
        for (i, &p) in preds.iter().enumerate() {
            if preds[..i].contains(&p) {
                continue;
            }
            if self.excluded.contains(p) {
                let mult = preds.iter().filter(|&&q| q == p).count() as u32;
                self.supplies_cut[p.index()] -= mult;
            }
        }
        self.cut.remove(v);
        self.sw_sum -= self.ctx.sw_cycles(v) as u64;
        self.definite_in -= d_in;
        self.definite_out -= d_out;
    }

    /// Marks `v` decided-out; returns the output-count delta for undo.
    fn exclude(&mut self, v: NodeId) -> u32 {
        let dag = self.ctx.block().dag();
        let mut d_out = 0u32;
        for &p in dag.preds(v) {
            if self.cut.contains(p) {
                if self.exc_cons[p.index()] == 0 && !self.ctx.block().is_live_out(p) {
                    d_out += 1;
                }
                self.exc_cons[p.index()] += 1;
            }
        }
        self.excluded.insert(v);
        self.definite_out += d_out;
        d_out
    }

    fn undo_exclude(&mut self, v: NodeId, d_out: u32) {
        let dag = self.ctx.block().dag();
        for &p in dag.preds(v) {
            if self.cut.contains(p) {
                self.exc_cons[p.index()] -= 1;
            }
        }
        self.excluded.remove(v);
        self.definite_out -= d_out;
    }

    fn leaf(&mut self) -> Result<(), BaselineError> {
        if self.cut.is_empty() {
            return Ok(());
        }
        // At a leaf every node is decided, so the definite counts are the
        // true counts; evaluate the critical path to get the merit.
        let cut = Cut::evaluate(self.ctx, self.cut.clone());
        debug_assert_eq!(cut.input_count(), self.definite_in);
        debug_assert_eq!(cut.output_count(), self.definite_out);
        if !cut.satisfies_io(self.io) || cut.merit() <= 0.0 {
            return Ok(());
        }
        if let Some(cuts) = &mut self.collect {
            if cuts.len() >= self.cfg.max_cuts {
                return Err(BaselineError::TooManyCuts {
                    limit: self.cfg.max_cuts,
                });
            }
            cuts.push(cut.clone());
        }
        let better = match &self.best {
            None => true,
            Some((m, _)) => cut.merit() > *m,
        };
        if better {
            self.best = Some((cut.merit(), cut));
        }
        Ok(())
    }
}

/// Finds the provably optimal single cut of a block under `io`, avoiding
/// `forbidden` nodes (exhaustive search with pruning, after Atasu et al.
/// DAC'03).
///
/// Returns an empty cut when no legal cut with positive merit exists.
///
/// # Errors
///
/// * [`BaselineError::TooLarge`] when the block exceeds
///   [`ExactConfig::max_nodes`].
/// * [`BaselineError::BudgetExhausted`] when the pruned search tree still
///   exceeds [`ExactConfig::max_steps`].
pub fn exact_single_cut(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    cfg: &ExactConfig,
    forbidden: Option<&NodeSet>,
) -> Result<Cut, BaselineError> {
    let mut search = Search::new(ctx, io, *cfg, forbidden, false)?;
    search.run()?;
    Ok(search
        .best
        .take()
        .map(|(_, c)| c)
        .unwrap_or_else(|| Cut::empty(ctx.node_count())))
}

/// Enumerates **every** legal positive-merit cut of a block under `io`
/// (the raw material of exact multiple-cut selection).
///
/// # Errors
///
/// Same conditions as [`exact_single_cut`], plus
/// [`BaselineError::TooManyCuts`] when more than
/// [`ExactConfig::max_cuts`] legal cuts exist.
pub fn enumerate_cuts(
    ctx: &BlockContext<'_>,
    io: IoConstraints,
    cfg: &ExactConfig,
    forbidden: Option<&NodeSet>,
) -> Result<Vec<Cut>, BaselineError> {
    let mut search = Search::new(ctx, io, *cfg, forbidden, true)?;
    search.run()?;
    Ok(search.collect.take().expect("collection enabled"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::{BasicBlock, BlockBuilder, LatencyModel, Opcode};

    fn dotprod() -> BasicBlock {
        let mut b = BlockBuilder::new("dot");
        let (a, b_, c, d) = (b.input("a"), b.input("b"), b.input("c"), b.input("d"));
        let m1 = b.op(Opcode::Mul, &[a, b_]).unwrap();
        let m2 = b.op(Opcode::Mul, &[c, d]).unwrap();
        b.op(Opcode::Add, &[m1, m2]).unwrap();
        b.build().unwrap()
    }

    /// Brute-force reference: try every subset of eligible nodes.
    fn brute_best(ctx: &BlockContext<'_>, io: IoConstraints) -> f64 {
        let elig: Vec<NodeId> = ctx.eligible().iter().collect();
        let n = ctx.node_count();
        let mut best = 0.0f64;
        for mask in 1u32..(1 << elig.len()) {
            let nodes = NodeSet::from_ids(
                n,
                elig.iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &v)| v),
            );
            if !ctx.is_convex(&nodes) {
                continue;
            }
            let cut = Cut::evaluate(ctx, nodes);
            if cut.satisfies_io(io) && cut.merit() > best {
                best = cut.merit();
            }
        }
        best
    }

    #[test]
    fn optimal_on_dotprod() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        for (i, o) in [(2u32, 1u32), (3, 2), (4, 1), (4, 2)] {
            let io = IoConstraints::new(i, o);
            let cut = exact_single_cut(&ctx, io, &ExactConfig::default(), None).unwrap();
            let reference = brute_best(&ctx, io);
            assert!(
                (cut.merit().max(0.0) - reference).abs() < 1e-9,
                "io {io}: exact {} vs brute {}",
                cut.merit(),
                reference
            );
            if !cut.is_empty() {
                assert!(cut.satisfies_io(io));
                assert!(ctx.is_convex(cut.nodes()));
            }
        }
    }

    #[test]
    fn too_large_rejected() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let cfg = ExactConfig {
            max_nodes: 2,
            ..ExactConfig::default()
        };
        assert!(matches!(
            exact_single_cut(&ctx, IoConstraints::new(4, 2), &cfg, None),
            Err(BaselineError::TooLarge { nodes: 3, limit: 2 })
        ));
    }

    #[test]
    fn budget_exhaustion_detected() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let cfg = ExactConfig {
            max_steps: 3,
            ..ExactConfig::default()
        };
        assert!(matches!(
            exact_single_cut(&ctx, IoConstraints::new(4, 2), &cfg, None),
            Err(BaselineError::BudgetExhausted { .. })
        ));
    }

    #[test]
    fn enumeration_finds_all_legal_cuts() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let io = IoConstraints::new(4, 2);
        let cuts = enumerate_cuts(&ctx, io, &ExactConfig::default(), None).unwrap();
        // brute-force count of legal positive-merit cuts
        let elig: Vec<NodeId> = ctx.eligible().iter().collect();
        let mut count = 0;
        for mask in 1u32..(1 << elig.len()) {
            let nodes = NodeSet::from_ids(
                ctx.node_count(),
                elig.iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &v)| v),
            );
            if !ctx.is_convex(&nodes) {
                continue;
            }
            let cut = Cut::evaluate(&ctx, nodes);
            if cut.satisfies_io(io) && cut.merit() > 0.0 {
                count += 1;
            }
        }
        assert_eq!(cuts.len(), count);
    }

    #[test]
    fn forbidden_respected() {
        let block = dotprod();
        let model = LatencyModel::paper_default();
        let ctx = BlockContext::new(&block, &model);
        let ids: Vec<NodeId> = block.dag().node_ids().collect();
        let forbidden = NodeSet::from_ids(7, [ids[4], ids[5]]); // both muls
        let cut = exact_single_cut(
            &ctx,
            IoConstraints::new(4, 2),
            &ExactConfig::default(),
            Some(&forbidden),
        )
        .unwrap();
        assert!(!cut.nodes().contains(ids[4]));
        assert!(!cut.nodes().contains(ids[5]));
    }
}
