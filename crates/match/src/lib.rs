//! Recurrence detection for ISE reuse: labelled subgraph isomorphism over
//! data-flow graphs.
//!
//! The ISEGEN paper's AES study (Fig. 7) hinges on *reusability*: a single
//! AFU covers every isomorphic instance of its cut in the DFG, so a
//! regular application is accelerated by few, large, recurring ISEs. This
//! crate supplies that machinery:
//!
//! * [`Pattern`] — the shape of a cut, extracted as an induced labelled
//!   subgraph with operand positions preserved.
//! * [`find_instances`] — all embeddings of a pattern in a block
//!   (VF2-style backtracking, opcode- and structure-pruned).
//! * [`find_disjoint_instances`] — a maximal greedy set of node-disjoint
//!   embeddings, skipping nodes already claimed by other ISEs.
//! * [`Pattern::signature`] — a structural hash for grouping identical
//!   cuts across configurations.
//!
//! Matching is *positional*: operand `p` of a pattern node must map to
//! operand `p` of the instance node. Regular code (unrolled loops,
//! byte-sliced crypto rounds) produces identical operand orders for its
//! repeated clusters, which is exactly the regularity the paper exploits;
//! commutativity-aware matching would only ever find more instances.
//!
//! # Example
//!
//! ```
//! use isegen_ir::{BlockBuilder, Opcode};
//! use isegen_graph::NodeSet;
//! use isegen_match::{Pattern, find_disjoint_instances};
//!
//! # fn main() -> Result<(), isegen_ir::BuildError> {
//! let mut b = BlockBuilder::new("twice");
//! // two identical (mul >> add) clusters
//! let mut firsts = Vec::new();
//! for k in 0..2 {
//!     let x = b.input(format!("x{k}"));
//!     let y = b.input(format!("y{k}"));
//!     let m = b.op(Opcode::Mul, &[x, y])?;
//!     let s = b.op(Opcode::Add, &[m, x])?;
//!     firsts.push((m, s));
//! }
//! let block = b.build()?;
//! let cut = NodeSet::from_ids(block.dag().node_count(), [firsts[0].0, firsts[0].1]);
//! let pattern = Pattern::extract(&block, &cut);
//! let instances = find_disjoint_instances(&block, &pattern, None);
//! assert_eq!(instances.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matcher;
mod pattern;

pub use matcher::{find_disjoint_instances, find_instances, MatchBudget};
pub use pattern::Pattern;
