use crate::Pattern;
use isegen_graph::{NodeId, NodeSet};
use isegen_ir::{BasicBlock, Opcode};

/// Backtracking budget for the isomorphism search.
///
/// The matcher counts candidate-assignment attempts; when the budget runs
/// out it returns the embeddings found so far. The default is generous
/// enough for every workload in this repository (AES included) while
/// bounding pathological inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchBudget {
    /// Maximum number of candidate assignments tried per search.
    pub max_steps: usize,
}

impl Default for MatchBudget {
    fn default() -> Self {
        MatchBudget {
            max_steps: 2_000_000,
        }
    }
}

struct Matcher<'a> {
    block: &'a BasicBlock,
    pattern: &'a Pattern,
    /// Nodes the embedding must avoid (previous ISEs + disjointness).
    avoid: NodeSet,
    /// φ: pattern index → block node.
    phi: Vec<Option<NodeId>>,
    /// Block nodes currently in the partial instance.
    in_instance: Vec<bool>,
    steps_left: usize,
    /// Per-opcode buckets of block node ids (anchor candidates).
    buckets: Vec<Vec<NodeId>>,
}

impl<'a> Matcher<'a> {
    fn new(
        block: &'a BasicBlock,
        pattern: &'a Pattern,
        excluded: Option<&NodeSet>,
        budget: MatchBudget,
    ) -> Self {
        let n = block.dag().node_count();
        let avoid = match excluded {
            Some(e) => e.clone(),
            None => NodeSet::new(n),
        };
        let mut buckets = vec![Vec::new(); Opcode::ALL.len()];
        for (id, op) in block.dag().nodes() {
            buckets[op.opcode().as_index()].push(id);
        }
        Matcher {
            block,
            pattern,
            avoid,
            phi: vec![None; pattern.node_count()],
            in_instance: vec![false; n],
            steps_left: budget.max_steps,
            buckets,
        }
    }

    /// Attempts to find one embedding. On success `phi` holds it.
    fn search(&mut self) -> bool {
        self.descend(0)
    }

    fn descend(&mut self, depth: usize) -> bool {
        if depth == self.pattern.order().len() {
            return self.verify();
        }
        let pi = self.pattern.order()[depth] as usize;
        // Candidate generation: through a matched producer, a matched
        // consumer, or (for anchors) the whole opcode bucket.
        if let Some((j, p)) = self.matched_producer(pi) {
            let producer = self.phi[j].expect("producer is matched");
            let succs: Vec<NodeId> = self.block.dag().succs(producer).to_vec();
            let mut tried: Vec<NodeId> = Vec::new();
            for u in succs {
                if tried.contains(&u) {
                    continue;
                }
                tried.push(u);
                if self.block.dag().preds(u).get(p) != Some(&producer) {
                    continue;
                }
                if self.try_assign(pi, u, depth) {
                    return true;
                }
            }
            false
        } else if let Some(u) = self.matched_consumer_operand(pi) {
            self.try_assign(pi, u, depth)
        } else {
            // Anchor of a (new) component: scan the opcode bucket.
            let bucket = self.buckets[self.pattern.opcode(pi).as_index()].clone();
            for u in bucket {
                if self.try_assign(pi, u, depth) {
                    return true;
                }
            }
            false
        }
    }

    /// Finds `(j, p)` such that pattern node `pi`'s operand `p` is the
    /// already-matched pattern node `j`.
    fn matched_producer(&self, pi: usize) -> Option<(usize, usize)> {
        for (p, op) in self.pattern.operands(pi).iter().enumerate() {
            if let Some(j) = op {
                if self.phi[*j as usize].is_some() {
                    return Some((*j as usize, p));
                }
            }
        }
        None
    }

    /// Finds the forced candidate when some matched pattern node consumes
    /// `pi`: operand `p` of that consumer's image.
    fn matched_consumer_operand(&self, pi: usize) -> Option<NodeId> {
        for j in 0..self.pattern.node_count() {
            let Some(image) = self.phi[j] else { continue };
            for (p, op) in self.pattern.operands(j).iter().enumerate() {
                if *op == Some(pi as u32) {
                    return self.block.dag().preds(image).get(p).copied();
                }
            }
        }
        None
    }

    fn try_assign(&mut self, pi: usize, u: NodeId, depth: usize) -> bool {
        if self.steps_left == 0 {
            return false;
        }
        self.steps_left -= 1;
        if !self.admissible(pi, u) {
            return false;
        }
        self.phi[pi] = Some(u);
        self.in_instance[u.index()] = true;
        if self.descend(depth + 1) {
            return true;
        }
        self.phi[pi] = None;
        self.in_instance[u.index()] = false;
        false
    }

    fn admissible(&self, pi: usize, u: NodeId) -> bool {
        if self.in_instance[u.index()] || self.avoid.contains(u) {
            return false;
        }
        let dag = self.block.dag();
        if self.block.opcode(u) != self.pattern.opcode(pi) {
            return false;
        }
        let ops = self.pattern.operands(pi);
        let preds = dag.preds(u);
        if preds.len() != ops.len() {
            return false;
        }
        for (p, op) in ops.iter().enumerate() {
            match op {
                Some(j) => {
                    if let Some(image) = self.phi[*j as usize] {
                        if preds[p] != image {
                            return false;
                        }
                    }
                }
                None => {
                    // External operand: its producer must not already be
                    // part of the instance.
                    if self.in_instance[preds[p].index()] {
                        return false;
                    }
                }
            }
        }
        // Consistency with matched consumers of pi.
        for j in 0..self.pattern.node_count() {
            let Some(image) = self.phi[j] else { continue };
            for (p, op) in self.pattern.operands(j).iter().enumerate() {
                if *op == Some(pi as u32) && dag.preds(image).get(p) != Some(&u) {
                    return false;
                }
            }
        }
        true
    }

    /// Full induced-subgraph verification of a complete assignment.
    fn verify(&self) -> bool {
        let dag = self.block.dag();
        for i in 0..self.pattern.node_count() {
            let u = self.phi[i].expect("complete assignment");
            let preds = dag.preds(u);
            for (p, op) in self.pattern.operands(i).iter().enumerate() {
                match op {
                    Some(j) => {
                        if preds[p] != self.phi[*j as usize].expect("complete") {
                            return false;
                        }
                    }
                    None => {
                        if self.in_instance[preds[p].index()] {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    fn instance_set(&self) -> NodeSet {
        NodeSet::from_ids(
            self.block.dag().node_count(),
            self.phi.iter().map(|m| m.expect("complete assignment")),
        )
    }

    fn reset(&mut self) {
        for m in self.phi.iter_mut() {
            *m = None;
        }
        for b in self.in_instance.iter_mut() {
            *b = false;
        }
    }
}

/// Finds a maximal set of node-disjoint embeddings of `pattern` in
/// `block`, greedily, skipping nodes in `excluded`.
///
/// The result is a *maximal* (not necessarily maximum) disjoint set: each
/// found embedding's nodes are locked before searching for the next. This
/// mirrors how an AFU claims DFG nodes: once an instance is bound to the
/// ISE, its operations no longer execute in software.
pub fn find_disjoint_instances(
    block: &BasicBlock,
    pattern: &Pattern,
    excluded: Option<&NodeSet>,
) -> Vec<NodeSet> {
    find_disjoint_instances_with(block, pattern, excluded, MatchBudget::default())
}

/// [`find_disjoint_instances`] with an explicit search budget.
pub fn find_disjoint_instances_with(
    block: &BasicBlock,
    pattern: &Pattern,
    excluded: Option<&NodeSet>,
    budget: MatchBudget,
) -> Vec<NodeSet> {
    let mut matcher = Matcher::new(block, pattern, excluded, budget);
    let mut out = Vec::new();
    loop {
        matcher.steps_left = budget.max_steps;
        if !matcher.search() {
            break;
        }
        let inst = matcher.instance_set();
        matcher.avoid.union_with(&inst);
        matcher.reset();
        out.push(inst);
    }
    out
}

/// Finds up to `limit` embeddings of `pattern` in `block` (embeddings may
/// overlap each other), skipping nodes in `excluded`.
///
/// Mostly useful for diagnostics and tests; ISE reuse wants
/// [`find_disjoint_instances`].
pub fn find_instances(
    block: &BasicBlock,
    pattern: &Pattern,
    excluded: Option<&NodeSet>,
    limit: usize,
) -> Vec<NodeSet> {
    // Enumerate by forbidding *only* previously found anchor images, which
    // yields distinct embeddings without full enumeration machinery.
    let mut out: Vec<NodeSet> = Vec::new();
    let budget = MatchBudget::default();
    let mut matcher = Matcher::new(block, pattern, excluded, budget);
    let anchor = pattern.order()[0] as usize;
    while out.len() < limit {
        matcher.steps_left = budget.max_steps;
        if !matcher.search() {
            break;
        }
        let inst = matcher.instance_set();
        // Ban this anchor image and retry for a different embedding.
        matcher.avoid.insert(matcher.phi[anchor].expect("complete"));
        matcher.reset();
        out.push(inst);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::{BlockBuilder, Opcode};

    /// k identical (mul >> add) clusters.
    fn clusters(k: usize) -> (BasicBlock, Vec<(NodeId, NodeId)>) {
        let mut b = BlockBuilder::new("t");
        let mut out = Vec::new();
        for i in 0..k {
            let x = b.input(format!("x{i}"));
            let y = b.input(format!("y{i}"));
            let m = b.op(Opcode::Mul, &[x, y]).unwrap();
            let s = b.op(Opcode::Add, &[m, x]).unwrap();
            out.push((m, s));
        }
        (b.build().unwrap(), out)
    }

    #[test]
    fn finds_every_disjoint_instance() {
        let (block, nodes) = clusters(5);
        let n = block.dag().node_count();
        let cut = NodeSet::from_ids(n, [nodes[0].0, nodes[0].1]);
        let pattern = Pattern::extract(&block, &cut);
        let found = find_disjoint_instances(&block, &pattern, None);
        assert_eq!(found.len(), 5);
        // pairwise disjoint
        for i in 0..found.len() {
            for j in (i + 1)..found.len() {
                assert!(found[i].is_disjoint(&found[j]));
            }
        }
        // the original cut is among them
        assert!(found.contains(&cut));
    }

    #[test]
    fn excluded_nodes_block_instances() {
        let (block, nodes) = clusters(3);
        let n = block.dag().node_count();
        let cut = NodeSet::from_ids(n, [nodes[0].0, nodes[0].1]);
        let pattern = Pattern::extract(&block, &cut);
        // exclude the second cluster's mul
        let excluded = NodeSet::from_ids(n, [nodes[1].0]);
        let found = find_disjoint_instances(&block, &pattern, Some(&excluded));
        assert_eq!(found.len(), 2);
        for f in &found {
            assert!(!f.contains(nodes[1].0));
        }
    }

    #[test]
    fn operand_positions_matter() {
        // sub(a, b) is not an instance of sub(b, a)-shaped pattern.
        let mut b = BlockBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let m = b.op(Opcode::Mul, &[x, y]).unwrap();
        let s1 = b.op(Opcode::Sub, &[m, x]).unwrap(); // internal first
        let m2 = b.op(Opcode::Mul, &[x, y]).unwrap();
        let _s2 = b.op(Opcode::Sub, &[y, m2]).unwrap(); // internal second
        let block = b.build().unwrap();
        let n = block.dag().node_count();
        let cut = NodeSet::from_ids(n, [m, s1]);
        let pattern = Pattern::extract(&block, &cut);
        let found = find_disjoint_instances(&block, &pattern, None);
        assert_eq!(found.len(), 1, "mirrored operand order must not match");
    }

    #[test]
    fn disconnected_pattern_matches() {
        let (block, nodes) = clusters(4);
        let n = block.dag().node_count();
        // pattern: two muls from different clusters (disconnected)
        let cut = NodeSet::from_ids(n, [nodes[0].0, nodes[1].0]);
        let pattern = Pattern::extract(&block, &cut);
        assert_eq!(pattern.component_count(), 2);
        let found = find_disjoint_instances(&block, &pattern, None);
        // 4 muls pair into 2 disjoint instances
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn overlapping_enumeration() {
        let (block, nodes) = clusters(3);
        let n = block.dag().node_count();
        let cut = NodeSet::from_ids(n, [nodes[0].0, nodes[0].1]);
        let pattern = Pattern::extract(&block, &cut);
        let found = find_instances(&block, &pattern, None, 10);
        assert_eq!(found.len(), 3);
    }

    #[test]
    fn single_node_pattern() {
        let (block, nodes) = clusters(3);
        let n = block.dag().node_count();
        let cut = NodeSet::from_ids(n, [nodes[2].0]);
        let pattern = Pattern::extract(&block, &cut);
        let found = find_disjoint_instances(&block, &pattern, None);
        assert_eq!(found.len(), 3, "every mul is an instance");
    }

    #[test]
    fn no_match_in_foreign_block() {
        let (block, nodes) = clusters(1);
        let n = block.dag().node_count();
        let cut = NodeSet::from_ids(n, [nodes[0].0, nodes[0].1]);
        let pattern = Pattern::extract(&block, &cut);

        let mut b2 = BlockBuilder::new("other");
        let x = b2.input("x");
        b2.op(Opcode::Xor, &[x, x]).unwrap();
        let other = b2.build().unwrap();
        assert!(find_disjoint_instances(&other, &pattern, None).is_empty());
    }
}
