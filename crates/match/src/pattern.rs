use isegen_graph::{NodeId, NodeSet};
use isegen_ir::{BasicBlock, Opcode};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The shape of a cut: an induced, labelled subgraph with operand
/// positions preserved, detached from the block it came from.
///
/// Pattern nodes are indexed `0..node_count` in ascending original-id
/// order. For each node and each operand slot the pattern records whether
/// the producer is *internal* (another pattern node) or *external* (an
/// input of the cut).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    opcodes: Vec<Opcode>,
    /// `operands[i][p]` = `Some(j)` when operand `p` of node `i` is
    /// produced by pattern node `j`; `None` when it comes from outside.
    operands: Vec<Vec<Option<u32>>>,
    /// Matching order: a permutation of `0..node_count` where every
    /// non-anchor node is adjacent (via an internal edge, either
    /// direction) to an earlier node of the same component.
    order: Vec<u32>,
    /// `order` positions that start a new connected component (anchors).
    anchors: Vec<usize>,
}

impl Pattern {
    /// Extracts the pattern of `cut` from `block`.
    ///
    /// # Panics
    ///
    /// Panics if `cut` is empty or its capacity does not match the block.
    pub fn extract(block: &BasicBlock, cut: &NodeSet) -> Pattern {
        let dag = block.dag();
        assert_eq!(
            cut.capacity(),
            dag.node_count(),
            "cut capacity does not match block"
        );
        assert!(
            !cut.is_empty(),
            "cannot extract a pattern from an empty cut"
        );

        let members: Vec<NodeId> = cut.iter().collect();
        let mut local = vec![u32::MAX; dag.node_count()];
        for (i, &v) in members.iter().enumerate() {
            local[v.index()] = i as u32;
        }
        let opcodes: Vec<Opcode> = members.iter().map(|&v| block.opcode(v)).collect();
        let operands: Vec<Vec<Option<u32>>> = members
            .iter()
            .map(|&v| {
                dag.preds(v)
                    .iter()
                    .map(|&p| {
                        if cut.contains(p) {
                            Some(local[p.index()])
                        } else {
                            None
                        }
                    })
                    .collect()
            })
            .collect();

        // Undirected internal adjacency for ordering.
        let k = members.len();
        let mut adj = vec![Vec::new(); k];
        for (i, ops) in operands.iter().enumerate() {
            for j in ops.iter().flatten() {
                adj[i].push(*j);
                adj[*j as usize].push(i as u32);
            }
        }
        let mut order = Vec::with_capacity(k);
        let mut anchors = Vec::new();
        let mut seen = vec![false; k];
        for start in 0..k {
            if seen[start] {
                continue;
            }
            anchors.push(order.len());
            seen[start] = true;
            order.push(start as u32);
            let mut head = order.len() - 1;
            while head < order.len() {
                let v = order[head] as usize;
                head += 1;
                for &w in &adj[v] {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        order.push(w);
                    }
                }
            }
        }

        Pattern {
            opcodes,
            operands,
            order,
            anchors,
        }
    }

    /// Number of pattern nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.opcodes.len()
    }

    /// Number of connected components.
    #[inline]
    pub fn component_count(&self) -> usize {
        self.anchors.len()
    }

    /// Opcode of pattern node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn opcode(&self, i: usize) -> Opcode {
        self.opcodes[i]
    }

    pub(crate) fn operands(&self, i: usize) -> &[Option<u32>] {
        &self.operands[i]
    }

    pub(crate) fn order(&self) -> &[u32] {
        &self.order
    }

    /// Positions in the matching order that start a new connected
    /// component (one per component; the matcher seeds its search at
    /// these).
    pub fn anchors(&self) -> &[usize] {
        &self.anchors
    }

    /// A structural signature: equal for isomorphic patterns extracted in
    /// the same node order, and invariant under translation of the cut to
    /// a different region of a block (local indices are relative).
    ///
    /// Two patterns with equal signatures are equal up to relabelling in
    /// practice; the signature is used to group recurring cuts (Fig. 7's
    /// CUT1..CUT4) rather than to prove isomorphism.
    pub fn signature(&self) -> u64 {
        // Weisfeiler–Lehman-style refinement: three rounds of hashing each
        // node with its operand structure, then an order-independent fold.
        let k = self.node_count();
        let mut labels: Vec<u64> = (0..k)
            .map(|i| {
                let mut h = DefaultHasher::new();
                self.opcodes[i].hash(&mut h);
                self.operands[i].len().hash(&mut h);
                h.finish()
            })
            .collect();
        for _round in 0..3 {
            let mut next = Vec::with_capacity(k);
            for i in 0..k {
                let mut h = DefaultHasher::new();
                labels[i].hash(&mut h);
                for (p, op) in self.operands[i].iter().enumerate() {
                    p.hash(&mut h);
                    match op {
                        Some(j) => labels[*j as usize].hash(&mut h),
                        None => u64::MAX.hash(&mut h),
                    }
                }
                next.push(h.finish());
            }
            labels = next;
        }
        labels.sort_unstable();
        let mut h = DefaultHasher::new();
        labels.hash(&mut h);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isegen_ir::BlockBuilder;

    fn two_clusters() -> (BasicBlock, Vec<NodeId>) {
        let mut b = BlockBuilder::new("t");
        let mut nodes = Vec::new();
        for k in 0..2 {
            let x = b.input(format!("x{k}"));
            let y = b.input(format!("y{k}"));
            let m = b.op(Opcode::Mul, &[x, y]).unwrap();
            let s = b.op(Opcode::Add, &[m, x]).unwrap();
            nodes.push(m);
            nodes.push(s);
        }
        (b.build().unwrap(), nodes)
    }

    #[test]
    fn extract_records_structure() {
        let (block, nodes) = two_clusters();
        let n = block.dag().node_count();
        let cut = NodeSet::from_ids(n, [nodes[0], nodes[1]]);
        let p = Pattern::extract(&block, &cut);
        assert_eq!(p.node_count(), 2);
        assert_eq!(p.component_count(), 1);
        assert_eq!(p.opcode(0), Opcode::Mul);
        assert_eq!(p.opcode(1), Opcode::Add);
        // mul has two external operands
        assert_eq!(p.operands(0), &[None, None]);
        // add consumes the mul internally and an external value
        assert_eq!(p.operands(1), &[Some(0), None]);
    }

    #[test]
    fn isomorphic_cuts_share_signatures() {
        let (block, nodes) = two_clusters();
        let n = block.dag().node_count();
        let c1 = NodeSet::from_ids(n, [nodes[0], nodes[1]]);
        let c2 = NodeSet::from_ids(n, [nodes[2], nodes[3]]);
        let p1 = Pattern::extract(&block, &c1);
        let p2 = Pattern::extract(&block, &c2);
        assert_eq!(p1.signature(), p2.signature());
        // a different shape signs differently
        let c3 = NodeSet::from_ids(n, [nodes[0]]);
        assert_ne!(p1.signature(), Pattern::extract(&block, &c3).signature());
    }

    #[test]
    fn disconnected_pattern_has_two_anchors() {
        let (block, nodes) = two_clusters();
        let n = block.dag().node_count();
        let cut = NodeSet::from_ids(n, [nodes[0], nodes[2]]);
        let p = Pattern::extract(&block, &cut);
        assert_eq!(p.component_count(), 2);
        assert_eq!(p.anchors(), &[0, 1]);
    }

    #[test]
    #[should_panic(expected = "empty cut")]
    fn empty_cut_rejected() {
        let (block, _) = two_clusters();
        let cut = NodeSet::new(block.dag().node_count());
        let _ = Pattern::extract(&block, &cut);
    }
}
