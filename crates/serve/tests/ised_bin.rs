//! Spawns the real `ised` binary on an ephemeral port and drives it over
//! TCP — the process-boundary slice of the daemon tests (the library
//! path is covered end-to-end in the workspace's `tests/serve_roundtrip.rs`).

use isegen_serve::json::{self, Json};
use std::io::{BufRead, BufReader, Read as _, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn() -> Daemon {
        Daemon::spawn_with(&[])
    }

    fn spawn_with(extra: &[&str]) -> Daemon {
        // --quiet: per-request logging off, so the undrained stderr pipe
        // can never fill and block the daemon mid-test. Panic messages
        // bypass the logger and still land on stderr for the final grep.
        let mut child = Command::new(env!("CARGO_BIN_EXE_ised"))
            .args(["--addr", "127.0.0.1:0", "--quiet"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn ised");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .expect("read banner");
        let addr = banner
            .trim()
            .rsplit(' ')
            .next()
            .expect("banner has address")
            .to_string();
        assert!(
            banner.contains("ised listening on"),
            "unexpected banner {banner:?}"
        );
        Daemon { child, addr }
    }

    fn connect(&self) -> TcpStream {
        TcpStream::connect(&self.addr).expect("connect to ised")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn roundtrip(conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, request: &str) -> Json {
    writeln!(conn, "{request}").expect("send");
    let mut line = String::new();
    reader.read_line(&mut line).expect("receive");
    json::parse(line.trim()).expect("response is JSON")
}

#[test]
fn binary_serves_submit_select_and_shuts_down_without_panicking() {
    let mut daemon = Daemon::spawn();
    let mut conn = daemon.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));

    let pong = roundtrip(&mut conn, &mut reader, r#"{"op":"ping"}"#);
    assert_eq!(pong.get("op").and_then(Json::as_str), Some("pong"));

    // A tiny program through the full submit → select path.
    let ir = "app demo\\nblock hot freq 100\\n  a = in\\n  b = in\\n  m = mul a b\\n  s = add m a\\nend\\n";
    let submit = roundtrip(
        &mut conn,
        &mut reader,
        &format!(r#"{{"op":"submit","ir":"{ir}"}}"#),
    );
    assert_eq!(
        submit.get("ok").and_then(Json::as_bool),
        Some(true),
        "{submit}"
    );
    let app = submit
        .get("app")
        .and_then(Json::as_str)
        .expect("hash")
        .to_string();
    let select = roundtrip(
        &mut conn,
        &mut reader,
        &format!(r#"{{"op":"select","app":"{app}"}}"#),
    );
    assert_eq!(
        select.get("ok").and_then(Json::as_bool),
        Some(true),
        "{select}"
    );
    assert!(
        select
            .get("speedup")
            .and_then(Json::as_f64)
            .expect("speedup")
            > 1.0
    );

    // Garbage must produce a structured error on the same connection.
    let err = roundtrip(&mut conn, &mut reader, "][ not json");
    assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("parse"));

    let bye = roundtrip(&mut conn, &mut reader, r#"{"op":"shutdown"}"#);
    assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
    drop(conn);
    drop(reader);

    let status = daemon.child.wait().expect("wait for exit");
    assert!(status.success(), "ised exited with {status:?}");
    let mut log = String::new();
    daemon
        .child
        .stderr
        .take()
        .expect("stderr piped")
        .read_to_string(&mut log)
        .map(|_| ())
        .expect("read log");
    assert!(
        !log.contains("panicked"),
        "server log shows a panic:\n{log}"
    );
}

/// SIGKILL the daemon mid-life and restart it on the same `--disk-cache`
/// log: the replacement must replay the log and answer the first select
/// as a cache hit, with the replay visible in its stats.
#[test]
fn killed_daemon_restarts_warm_from_its_disk_cache() {
    let disk = std::env::temp_dir().join(format!(
        "isegen-ised-warm-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock")
            .as_nanos()
    ));
    let disk_arg = disk.to_str().expect("utf8 temp path").to_string();

    let mut daemon = Daemon::spawn_with(&["--disk-cache", &disk_arg]);
    let mut conn = daemon.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let ir = "app demo\\nblock hot freq 100\\n  a = in\\n  b = in\\n  m = mul a b\\n  s = add m a\\nend\\n";
    let first = roundtrip(
        &mut conn,
        &mut reader,
        &format!(r#"{{"op":"select","ir":"{ir}"}}"#),
    );
    assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));
    let app = first
        .get("app")
        .and_then(Json::as_str)
        .expect("hash")
        .to_string();
    drop(conn);
    drop(reader);

    // The crash: no drain, no graceful flush — the append-time fsync is
    // all the durability the log gets.
    daemon.child.kill().expect("SIGKILL");
    daemon.child.wait().expect("reap");

    let daemon = Daemon::spawn_with(&["--disk-cache", &disk_arg]);
    let mut conn = daemon.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let warm = roundtrip(
        &mut conn,
        &mut reader,
        &format!(r#"{{"op":"select","app":"{app}"}}"#),
    );
    assert_eq!(
        warm.get("cache").and_then(Json::as_str),
        Some("hit"),
        "restarted daemon is not warm: {warm}"
    );

    let stats = roundtrip(&mut conn, &mut reader, r#"{"op":"stats"}"#);
    let disk_stats = stats.get("disk").expect("disk stats present");
    assert_eq!(
        disk_stats.get("replayed_apps").and_then(Json::as_u64),
        Some(1),
        "{stats}"
    );
    assert_eq!(
        disk_stats.get("replayed_selections").and_then(Json::as_u64),
        Some(1),
        "{stats}"
    );
    std::fs::remove_file(&disk).ok();
}
