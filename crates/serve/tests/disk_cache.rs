//! Disk-cache log tests: record round-trips (property-based), torn
//! writes truncated at every byte boundary of the last record, bit-flip
//! corruption, and a crash-warm reopen through the full service path.

use isegen_core::{Cut, Ise, IseConfig, IseInstance, IseSelection, SearchConfig};
use isegen_graph::{NodeId, NodeSet};
use isegen_ir::LatencyModel;
use isegen_serve::cache::fnv1a;
use isegen_serve::disk::{decode_record, encode_record, DiskLog, Record, MAGIC};
use isegen_serve::json::Json;
use isegen_serve::{SelectionKey, ServeCache, Service};
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock")
        .as_nanos();
    std::env::temp_dir().join(format!("isegen-disk-{tag}-{}-{nanos}", std::process::id()))
}

/// An App record whose hash matches its canonical text (decode rejects
/// anything else, by design).
fn app_record(canonical: &str) -> Record {
    Record::App {
        hash: fnv1a(canonical.as_bytes()),
        canonical: canonical.to_string(),
    }
}

/// Frames a payload the way `DiskLog::append` does: length, checksum,
/// bytes. The torn-write tests build files by hand with this.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

#[test]
fn app_records_round_trip_exactly() {
    for canonical in ["", "a", "app x\nblock b freq 1\n  n = in\nend\n"] {
        let record = app_record(canonical);
        let payload = encode_record(&record);
        assert_eq!(decode_record(&payload).expect("decodes"), record);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any selection record — including NaN latencies, which survive as
    /// bit patterns — re-encodes to identical bytes after a decode.
    /// Keys without multilevel knobs use the legacy tag-2 layout, keys
    /// with them the tag-3 layout; both must carry the knobs faithfully.
    fn selection_records_round_trip_via_bytes(
        app_hash in any::<u64>(),
        total_sw in any::<u64>(),
        saved in any::<u64>(),
        with_ml in any::<bool>(),
        ml_knobs in (1usize..4096, 1usize..4096, 1usize..4096),
        ise_seeds in proptest::collection::vec(
            (0usize..4, any::<u64>(), any::<u64>(), any::<u64>(), 1usize..24),
            0..4,
        ),
    ) {
        let mut search = SearchConfig::default();
        if let Some((min_coarse_ops, max_levels, boundary_band)) = with_ml.then_some(ml_knobs) {
            search = search.with_multilevel(
                isegen_core::MultilevelConfig::new()
                    .with_min_coarse_ops(min_coarse_ops)
                    .with_max_levels(max_levels)
                    .with_boundary_band(boundary_band),
            );
        }
        let key = SelectionKey::new(&IseConfig::paper_default(), &search);
        let ises = ise_seeds
            .iter()
            .map(|&(block, saved_per, sw, hw_bits, cap)| {
                let nodes = NodeSet::from_ids(
                    cap,
                    (0..cap).step_by(2).map(NodeId::from_index),
                );
                let cut = Cut::from_saved(
                    nodes.clone(),
                    (cap as u32).min(4),
                    1,
                    sw,
                    f64::from_bits(hw_bits),
                );
                Ise {
                    block_index: block,
                    cut,
                    instances: vec![IseInstance { block_index: block, nodes }],
                    saved_per_execution: saved_per,
                }
            })
            .collect();
        let record = Record::Selection {
            app_hash,
            key,
            selection: IseSelection {
                ises,
                total_sw_cycles: total_sw,
                saved_cycles: saved,
            },
        };
        let payload = encode_record(&record);
        let decoded = decode_record(&payload).expect("decodes");
        // NaN makes Record's PartialEq useless here; byte equality of the
        // re-encoding is the stronger statement anyway.
        prop_assert_eq!(encode_record(&decoded), payload);
    }
}

#[test]
fn torn_write_truncates_to_the_last_complete_record() {
    let full_records = [
        app_record("app a\nblock b freq 1\n  n = in\nend\n"),
        app_record("app c\nblock d freq 2\n  m = in\nend\n"),
        app_record("app e\nblock f freq 3\n  k = in\nend\n"),
    ];
    let mut good = Vec::from(&MAGIC[..]);
    good.extend_from_slice(&frame(&encode_record(&full_records[0])));
    good.extend_from_slice(&frame(&encode_record(&full_records[1])));
    let prefix_len = good.len();
    let mut full = good.clone();
    full.extend_from_slice(&frame(&encode_record(&full_records[2])));

    // Tear the last record at every byte boundary: header, checksum and
    // payload alike. Replay must keep exactly the first two records and
    // shrink the file back to the valid prefix.
    for cut in prefix_len..full.len() {
        let path = temp_path(&format!("torn-{cut}"));
        std::fs::write(&path, &full[..cut]).expect("write torn log");
        let (log, report) = DiskLog::open(&path).expect("open survives tear");
        assert_eq!(report.records, &full_records[..2], "cut at {cut}");
        assert_eq!(
            report.truncated_bytes as usize,
            cut - prefix_len,
            "cut at {cut}"
        );
        assert_eq!(
            std::fs::metadata(&path).expect("meta").len() as usize,
            prefix_len,
            "file not shrunk for cut at {cut}"
        );
        // The log must accept appends after recovery…
        log.append(&full_records[2]).expect("append after recovery");
        drop(log);
        // …and a second replay sees all three records, zero loss.
        let (_, report) = DiskLog::open(&path).expect("reopen");
        assert_eq!(report.records, full_records);
        assert_eq!(report.truncated_bytes, 0);
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn bit_flips_invalidate_the_record_and_its_suffix() {
    let records = [
        app_record("app a\nblock b freq 1\n  n = in\nend\n"),
        app_record("app c\nblock d freq 2\n  m = in\nend\n"),
        app_record("app e\nblock f freq 3\n  k = in\nend\n"),
    ];
    let mut bytes = Vec::from(&MAGIC[..]);
    let mut offsets = Vec::new();
    for r in &records {
        offsets.push(bytes.len());
        bytes.extend_from_slice(&frame(&encode_record(r)));
    }
    // Flip one byte inside the middle record's payload: replay keeps
    // only the first record — the corrupt one and everything after it
    // (unreachable without resynchronizing) are dropped.
    let mut corrupt = bytes.clone();
    corrupt[offsets[1] + 14] ^= 0x40;
    let path = temp_path("bitflip");
    std::fs::write(&path, &corrupt).expect("write corrupt log");
    let (_, report) = DiskLog::open(&path).expect("open survives corruption");
    assert_eq!(report.records, &records[..1]);
    assert!(report.truncated_bytes > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn foreign_file_is_reinitialized_not_trusted() {
    let path = temp_path("foreign");
    std::fs::write(&path, b"definitely not a cache log").expect("write");
    let (log, report) = DiskLog::open(&path).expect("open");
    assert!(report.records.is_empty());
    assert!(report.truncated_bytes > 0);
    log.append(&app_record("app a\nblock b freq 1\n  n = in\nend\n"))
        .expect("append");
    let (_, report) = DiskLog::open(&path).expect("reopen");
    assert_eq!(report.records.len(), 1);
    std::fs::remove_file(&path).ok();
}

/// The acceptance check of the tier: submit + select through the real
/// service, "crash" (drop without any graceful flush), reopen, and the
/// selection must come back as a memo hit with bit-identical content.
#[test]
fn service_reopens_warm_and_serves_identical_bytes() {
    let spec = isegen_workloads::workload_by_name("synth_tiny").expect("workload");
    let ir = isegen_ir::text::write_application(&spec.application());
    let select = Json::obj([("op", "select".into()), ("ir", ir.as_str().into())]).to_string();
    let path = temp_path("warm");
    let model = LatencyModel::paper_default;

    let cold = Service::new(
        ServeCache::with_disk(8, model(), &path).expect("disk cache"),
        "test",
        false,
    );
    let first = cold.handle_bytes(select.as_bytes()).expect("select");
    assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));
    let app = first
        .get("app")
        .and_then(Json::as_str)
        .expect("hash")
        .to_string();
    drop(cold); // the "crash": no shutdown path runs

    let warm = Service::new(
        ServeCache::with_disk(8, model(), &path).expect("reopen"),
        "test",
        false,
    );
    let d = warm.cache().disk_counters().expect("disk tier");
    assert_eq!(d.replayed_apps, 1, "{d:?}");
    assert_eq!(d.replayed_selections, 1, "{d:?}");
    assert_eq!(d.skipped_records, 0, "{d:?}");

    // Served from the replayed memo: a hit, both by hash and by IR.
    let by_hash = Json::obj([("op", "select".into()), ("app", app.as_str().into())]).to_string();
    let second = warm.handle_bytes(by_hash.as_bytes()).expect("select");
    assert_eq!(second.get("cache").and_then(Json::as_str), Some("hit"));
    let c = warm.cache().counters();
    assert_eq!(c.selection_misses, 0, "replay must not recompute");

    // Bit-identical selection content, including float payloads.
    let strip_cache = |response: &Json| match response {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .filter(|(k, _)| k != "cache")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    };
    assert_eq!(
        strip_cache(&first).to_string(),
        strip_cache(&second).to_string(),
        "replayed selection differs from the computed one"
    );

    std::fs::remove_file(&path).ok();
}

/// Regression guard: replay tolerates selection records whose app
/// record was lost (points at nothing) without inventing state.
#[test]
fn orphan_selection_records_are_skipped() {
    let path = temp_path("orphan");
    {
        let (log, _) = DiskLog::open(&path).expect("open");
        let key = SelectionKey::new(&IseConfig::paper_default(), &SearchConfig::default());
        log.append(&Record::Selection {
            app_hash: 0xdead_beef,
            key,
            selection: IseSelection {
                ises: Vec::new(),
                total_sw_cycles: 10,
                saved_cycles: 0,
            },
        })
        .expect("append orphan");
    }
    let cache = ServeCache::with_disk(8, LatencyModel::paper_default(), &path).expect("open");
    let d = cache.disk_counters().expect("disk tier");
    assert_eq!(d.replayed_selections, 0);
    assert_eq!(d.skipped_records, 1, "{d:?}");
    std::fs::remove_file(&path).ok();
}
