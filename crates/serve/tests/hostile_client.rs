//! Hostile-client tests against the real `ised` binary: slowloris
//! requests, idle connections, oversized frames, framing abuse, and the
//! shutdown-latency bound under a load of parked connections.

use isegen_serve::json::{self, Json};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns `ised --addr 127.0.0.1:0 --quiet <extra>` and scrapes the
    /// bound address from the banner.
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_ised"))
            .args(["--addr", "127.0.0.1:0", "--quiet"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn ised");
        let stdout = child.stdout.take().expect("stdout piped");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .expect("read banner");
        assert!(
            banner.contains("ised listening on"),
            "unexpected banner {banner:?}"
        );
        let addr = banner
            .trim()
            .rsplit(' ')
            .next()
            .expect("banner has address")
            .to_string();
        Daemon { child, addr }
    }

    fn connect(&self) -> TcpStream {
        let conn = TcpStream::connect(&self.addr).expect("connect to ised");
        conn.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        conn
    }

    /// Polls `try_wait` until the child exits or `bound` passes.
    fn exits_within(&mut self, bound: Duration) -> bool {
        let t0 = Instant::now();
        while t0.elapsed() < bound {
            if self.child.try_wait().expect("try_wait").is_some() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.child.try_wait().expect("try_wait").is_some()
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Writes one length-prefixed frame: `#<len>\n<payload>\n`.
fn write_prefixed(conn: &mut TcpStream, payload: &[u8]) {
    let mut frame = format!("#{}\n", payload.len()).into_bytes();
    frame.extend_from_slice(payload);
    frame.push(b'\n');
    conn.write_all(&frame).expect("send prefixed frame");
}

/// Reads one length-prefixed frame and parses its payload as JSON.
fn read_prefixed(reader: &mut BufReader<TcpStream>) -> Json {
    let mut header = String::new();
    reader.read_line(&mut header).expect("read frame header");
    let len: usize = header
        .trim()
        .strip_prefix('#')
        .expect("prefixed header")
        .parse()
        .expect("decimal length");
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload).expect("read frame body");
    let mut terminator = [0u8; 1];
    reader.read_exact(&mut terminator).expect("read terminator");
    assert_eq!(terminator[0], b'\n');
    json::parse(&String::from_utf8_lossy(&payload)).expect("frame payload is JSON")
}

fn read_line_json(reader: &mut BufReader<TcpStream>) -> Json {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response line");
    json::parse(line.trim()).expect("response is JSON")
}

/// A client that trickles half a request and then stalls must get a
/// structured timeout error and a closed connection — within the
/// configured deadline, not the server's patience.
#[test]
fn slowloris_request_is_cut_off_at_the_read_deadline() {
    let daemon = Daemon::spawn(&["--read-deadline", "300"]);
    let mut conn = daemon.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));

    let t0 = Instant::now();
    conn.write_all(b"{\"op\":\"pi").expect("partial request");
    // …and never finish it.
    let response = read_line_json(&mut reader);
    let elapsed = t0.elapsed();
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(response.get("kind").and_then(Json::as_str), Some("timeout"));
    assert!(
        elapsed < Duration::from_secs(3),
        "deadline enforcement took {elapsed:?}"
    );
    // The connection is done: the next read sees EOF.
    let mut rest = Vec::new();
    let n = reader.read_to_end(&mut rest).expect("drain to EOF");
    assert_eq!(n, 0, "server kept the connection open past the deadline");
}

/// A connection that never sends anything is reaped by the idle timeout
/// (silently — there is no request to answer).
#[test]
fn idle_connection_is_closed_without_a_response() {
    let daemon = Daemon::spawn(&["--idle-timeout", "300"]);
    let conn = daemon.connect();
    let mut reader = BufReader::new(conn);

    let t0 = Instant::now();
    let mut buf = Vec::new();
    let n = reader.read_to_end(&mut buf).expect("read until close");
    let elapsed = t0.elapsed();
    assert_eq!(n, 0, "idle close must not write anything: {buf:?}");
    assert!(
        elapsed < Duration::from_secs(3),
        "idle reap took {elapsed:?}"
    );
}

/// A prefixed header declaring an absurd length is rejected up front —
/// the server must not try to buffer it.
#[test]
fn oversized_prefixed_header_is_rejected_and_closed() {
    let daemon = Daemon::spawn(&[]);
    let mut conn = daemon.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));

    conn.write_all(b"#999999999999\n").expect("evil header");
    let response = read_prefixed(&mut reader);
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(
        response.get("kind").and_then(Json::as_str),
        Some("protocol"),
        "{response}"
    );
    // An unread prefixed body cannot be resynchronized: connection closes.
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).expect("drain"), 0);
}

/// Length-prefixed framing carries payloads the line protocol cannot:
/// pretty-printed JSON with embedded newlines.
#[test]
fn prefixed_framing_carries_multiline_requests() {
    let daemon = Daemon::spawn(&[]);
    let mut conn = daemon.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));

    write_prefixed(&mut conn, b"{\n  \"op\":\n  \"ping\"\n}");
    let pong = read_prefixed(&mut reader);
    assert_eq!(pong.get("op").and_then(Json::as_str), Some("pong"));
}

/// One connection may interleave legacy line framing and prefixed
/// framing; each response uses its request's framing.
#[test]
fn mixed_framings_interleave_on_one_connection() {
    let daemon = Daemon::spawn(&[]);
    let mut conn = daemon.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));

    writeln!(conn, "{{\"op\":\"ping\"}}").expect("line request");
    let pong = read_line_json(&mut reader);
    assert_eq!(pong.get("op").and_then(Json::as_str), Some("pong"));

    write_prefixed(&mut conn, b"{\"op\":\"stats\"}");
    let stats = read_prefixed(&mut reader);
    assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
    assert!(stats.get("connections").and_then(Json::as_u64).is_some());

    writeln!(conn, "{{\"op\":\"ping\"}}").expect("line request again");
    let pong = read_line_json(&mut reader);
    assert_eq!(pong.get("op").and_then(Json::as_str), Some("pong"));
}

/// The shutdown-latency bound: with several parked connections holding
/// worker threads in blocking reads, a `shutdown` request must still
/// bring the process down promptly — workers are woken by the read-half
/// close, not by waiting out poll intervals per connection.
#[test]
fn shutdown_is_prompt_under_parked_connections() {
    let mut daemon = Daemon::spawn(&[]);
    // Parked connections: never send a byte, keep their workers blocked.
    let parked: Vec<TcpStream> = (0..6).map(|_| daemon.connect()).collect();

    let mut conn = daemon.connect();
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    writeln!(conn, "{{\"op\":\"shutdown\"}}").expect("send shutdown");
    let ack = read_line_json(&mut reader);
    assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true));

    let t0 = Instant::now();
    assert!(
        daemon.exits_within(Duration::from_secs(2)),
        "ised still alive {:?} after shutdown ack with parked connections",
        t0.elapsed()
    );
    drop(parked);
}
