//! Fleet integration tests: routing parity with the library engine,
//! SIGKILL failover, warm restarts from the disk log (by supervisor and
//! by drain), and graceful degradation when no shard can ever spawn.
//!
//! Every test runs real `ised` child processes (CARGO_BIN_EXE_ised) but
//! drives the [`Fleet`] in-process, so shard lifecycle can be observed
//! and perturbed directly.

use isegen_ir::{text, LatencyModel};
use isegen_serve::cache::fnv1a;
use isegen_serve::fleet::{Fleet, FleetConfig, Ring, Router};
use isegen_serve::json::{self, Json};
use isegen_serve::{ServeCache, Service};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock")
        .as_nanos();
    std::env::temp_dir().join(format!("isegen-fleet-{tag}-{}-{nanos}", std::process::id()))
}

/// A fleet config sized for tests: the real binary, a scratch state
/// dir, and fast supervision so restarts are observable in seconds.
fn test_config(shards: usize, tag: &str) -> FleetConfig {
    FleetConfig {
        shards,
        ised_bin: PathBuf::from(env!("CARGO_BIN_EXE_ised")),
        state_dir: temp_dir(tag),
        cache_capacity: 8,
        verbose: false,
        health_interval: Duration::from_millis(100),
        backoff_base: Duration::from_millis(20),
        breaker_open_for: Duration::from_millis(300),
        ..FleetConfig::default()
    }
}

fn select_by_ir(ir: &str) -> Vec<u8> {
    Json::obj([("op", "select".into()), ("ir", ir.into())])
        .to_string()
        .into_bytes()
}

fn parse(bytes: &[u8]) -> Json {
    json::parse(String::from_utf8_lossy(bytes).trim()).expect("response is JSON")
}

/// Responses with the transport-dependent `cache` field removed, so
/// hit/miss answers can be compared on content.
fn strip_cache(response: &Json) -> String {
    match response {
        Json::Obj(members) => Json::Obj(
            members
                .iter()
                .filter(|(k, _)| k != "cache")
                .cloned()
                .collect(),
        )
        .to_string(),
        other => other.to_string(),
    }
}

fn workload_ir() -> String {
    let spec = isegen_workloads::workload_by_name("synth_tiny").expect("workload");
    text::write_application(&spec.application())
}

/// The routing key the fleet computes for this IR — canonical-text FNV,
/// matching [`Fleet`]'s placement exactly.
fn routing_key(ir: &str) -> u64 {
    let app = text::parse_application(ir).expect("parse ir");
    fnv1a(text::write_application(&app).as_bytes())
}

/// Requests routed through real shards must answer with exactly the
/// bytes the in-process library engine produces.
#[test]
fn routed_responses_match_the_library_engine_byte_for_byte() {
    let fleet = Fleet::start(test_config(2, "parity")).expect("fleet");
    let ir = workload_ir();

    let via_fleet = parse(&fleet.handle(&select_by_ir(&ir)));
    let local = Service::new(
        ServeCache::new(8, LatencyModel::paper_default()),
        "oracle",
        false,
    );
    let via_library = local
        .handle_bytes(&select_by_ir(&ir))
        .expect("local select");
    assert_eq!(
        via_fleet.to_string(),
        via_library.to_string(),
        "shard and library answers diverge"
    );
    assert_eq!(via_fleet.get("cache").and_then(Json::as_str), Some("miss"));

    // And by hash on the second round: a cache hit on the same shard.
    let app = via_fleet.get("app").and_then(Json::as_str).expect("hash");
    let by_hash = Json::obj([("op", "select".into()), ("app", app.into())])
        .to_string()
        .into_bytes();
    let second = parse(&fleet.handle(&by_hash));
    assert_eq!(second.get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(strip_cache(&via_fleet), strip_cache(&second));
}

/// SIGKILL the primary shard mid-fleet: the next request fails over to
/// the ring's next shard and the answer's content is unchanged. Then
/// the health loop restarts the dead shard, which must come back warm
/// from its disk log.
#[test]
fn sigkilled_shard_fails_over_then_restarts_warm() {
    let fleet = Fleet::start(test_config(2, "sigkill")).expect("fleet");
    let ir = workload_ir();
    let key = routing_key(&ir);
    let primary = Ring::new(2).shard_for(key);

    let first = parse(&fleet.handle(&select_by_ir(&ir)));
    assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));
    let app = first
        .get("app")
        .and_then(Json::as_str)
        .expect("hash")
        .to_string();

    // Kill the primary the hard way — no drain, no flush.
    let backend = &fleet.backends()[primary];
    let old_pid = backend.pid().expect("primary pid");
    assert!(std::process::Command::new("kill")
        .args(["-9", &old_pid.to_string()])
        .status()
        .expect("kill")
        .success());
    // try_wait observes the death (and reaps) once the signal lands.
    let t0 = Instant::now();
    while !backend.child_dead() && t0.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(backend.child_dead(), "SIGKILL did not take");

    // No health loop is running yet: the failover is the router's own.
    let failover = parse(&fleet.handle(&select_by_ir(&ir)));
    assert_eq!(
        strip_cache(&first),
        strip_cache(&failover),
        "failover answer diverges from the original"
    );
    let stats = fleet.aggregate_stats();
    let router = stats.get("router").expect("router stats");
    assert!(
        router.get("failovers").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "{stats}"
    );

    // Now supervise: the health loop restarts the shard; the replayed
    // disk log makes the very first select a cache hit. A panicking
    // assert must still stop the health loop, or the scope never joins.
    std::thread::scope(|scope| {
        scope.spawn(|| fleet.run_health_loop());
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let t0 = Instant::now();
            while t0.elapsed() < Duration::from_secs(15) {
                if !backend.child_dead() && backend.pid() != Some(old_pid) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
            assert!(
                !backend.child_dead() && backend.pid() != Some(old_pid),
                "health loop never restarted shard {primary}"
            );
            assert!(backend.restarts.load(std::sync::atomic::Ordering::Relaxed) >= 1);

            let by_hash = Json::obj([("op", "select".into()), ("app", app.as_str().into())])
                .to_string()
                .into_bytes();
            let warm = parse(&fleet.handle(&by_hash));
            assert_eq!(
                warm.get("cache").and_then(Json::as_str),
                Some("hit"),
                "restarted shard is not warm: {warm}"
            );
            assert_eq!(strip_cache(&first), strip_cache(&warm));
        }));
        fleet.request_stop();
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    });
    std::fs::remove_dir_all(&fleet.config().state_dir).ok();
}

/// `drain` flushes a shard, restarts it, and the replacement process
/// serves the drained shard's cache from its log.
#[test]
fn drain_recycles_the_shard_warm() {
    let fleet = Fleet::start(test_config(1, "drain")).expect("fleet");
    let ir = workload_ir();

    let first = parse(&fleet.handle(&select_by_ir(&ir)));
    assert_eq!(first.get("cache").and_then(Json::as_str), Some("miss"));
    let old_pid = fleet.backends()[0].pid().expect("pid");

    let drained = fleet.drain_shard(0);
    assert_eq!(
        drained.get("ok").and_then(Json::as_bool),
        Some(true),
        "{drained}"
    );
    assert_eq!(
        drained.get("acked").and_then(Json::as_bool),
        Some(true),
        "{drained}"
    );
    let new_pid = drained
        .get("new_pid")
        .and_then(Json::as_u64)
        .expect("new pid");
    assert_ne!(new_pid, old_pid as u64, "drain did not replace the process");

    let warm = parse(&fleet.handle(&select_by_ir(&ir)));
    assert_eq!(
        warm.get("cache").and_then(Json::as_str),
        Some("hit"),
        "drained shard came back cold: {warm}"
    );
    assert_eq!(strip_cache(&first), strip_cache(&warm));

    // Out-of-range shard index is a structured error, not a panic.
    let bad = fleet.drain_shard(7);
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    std::fs::remove_dir_all(&fleet.config().state_dir).ok();
}

/// A fleet whose binary cannot spawn still answers everything — from
/// the in-process fallback engine, with ordinary `ok` responses.
#[test]
fn unspawnable_fleet_degrades_to_the_fallback_engine() {
    let mut config = test_config(2, "nobin");
    config.ised_bin = PathBuf::from("/nonexistent/ised-does-not-exist");
    let fleet = Fleet::start(config).expect("fleet starts degraded");
    let ir = workload_ir();

    let response = parse(&fleet.handle(&select_by_ir(&ir)));
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "{response}"
    );
    let stats = fleet.aggregate_stats();
    let router = stats.get("router").expect("router stats");
    assert!(
        router.get("fallbacks").and_then(Json::as_u64).unwrap_or(0) >= 1,
        "{stats}"
    );
    std::fs::remove_dir_all(&fleet.config().state_dir).ok();
}

/// TCP smoke over the full stack: router front, one shard, both ops
/// that only the router understands (`stats` aggregation, fleet-wide
/// `shutdown`).
#[test]
fn router_front_serves_ping_stats_and_shutdown_over_tcp() {
    let fleet = Fleet::start(test_config(1, "front")).expect("fleet");
    let state_dir = fleet.config().state_dir.clone();
    let router = Router::bind("127.0.0.1:0", fleet).expect("bind router");
    let addr = router.local_addr();

    std::thread::scope(|scope| {
        scope.spawn(|| router.run().expect("router run"));

        // As above: a panicking assert must still stop the router so
        // the scope can join.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut conn = TcpStream::connect(addr).expect("connect");
            conn.set_read_timeout(Some(Duration::from_secs(10)))
                .expect("timeout");
            let mut reader = BufReader::new(conn.try_clone().expect("clone"));
            let mut roundtrip = |request: &str| -> Json {
                writeln!(conn, "{request}").expect("send");
                let mut line = String::new();
                reader.read_line(&mut line).expect("receive");
                json::parse(line.trim()).expect("response is JSON")
            };

            let pong = roundtrip(r#"{"op":"ping"}"#);
            assert_eq!(pong.get("op").and_then(Json::as_str), Some("pong"));

            let stats = roundtrip(r#"{"op":"stats"}"#);
            assert_eq!(stats.get("ok").and_then(Json::as_bool), Some(true));
            assert!(stats.get("router").is_some(), "{stats}");
            assert!(stats.get("connections").and_then(Json::as_u64).is_some());

            let missing = roundtrip(r#"{"op":"drain"}"#);
            assert_eq!(missing.get("ok").and_then(Json::as_bool), Some(false));
            assert_eq!(missing.get("kind").and_then(Json::as_str), Some("protocol"));

            let bye = roundtrip(r#"{"op":"shutdown"}"#);
            assert_eq!(bye.get("ok").and_then(Json::as_bool), Some(true));
        }));
        router.request_stop();
        if let Err(panic) = outcome {
            std::panic::resume_unwind(panic);
        }
    });
    std::fs::remove_dir_all(&state_dir).ok();
}
