//! `ised` — the ISE selection daemon.
//!
//! ```sh
//! ised                         # 127.0.0.1:9417, cache capacity 64
//! ised --addr 0.0.0.0:7000 --cache 256
//! ised --addr 127.0.0.1:0      # ephemeral port, printed on stdout
//! ised --disk-cache /var/lib/ised/cache.log   # crash-warm cache
//! ```
//!
//! Logs go to stderr; the "listening on" line goes to stdout so
//! supervisors (and the CI smoke test) can scrape the bound address.

use isegen_serve::{Server, ServerConfig};
use std::io::Write as _;
use std::time::Duration;

const USAGE: &str = "usage: ised [--addr HOST:PORT] [--cache N] [--disk-cache PATH]
            [--idle-timeout MS] [--read-deadline MS] [--quiet]
  --addr HOST:PORT    listen address (default 127.0.0.1:9417; port 0 = ephemeral)
  --cache N           LRU capacity in applications (default 64)
  --disk-cache PATH   append-only cache log, replayed on boot (crash-warm restarts)
  --idle-timeout MS   close connections idle for MS milliseconds
  --read-deadline MS  a started request must arrive fully within MS milliseconds
  --quiet             suppress per-request logging on stderr";

/// Prints usage and exits with code 2 — the CLI-contract shared with the
/// eval binaries: bad arguments are a usage error, not a panic.
fn usage_error(message: &str) -> ! {
    eprintln!("ised: {message}\n{USAGE}");
    std::process::exit(2);
}

fn parse_millis(flag: &str, value: Option<String>) -> Duration {
    match value.map(|v| v.parse::<u64>()) {
        Some(Ok(ms)) if ms > 0 => Duration::from_millis(ms),
        _ => usage_error(&format!("{flag} needs a positive millisecond count")),
    }
}

fn main() {
    let mut addr = "127.0.0.1:9417".to_string();
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => usage_error("--addr needs HOST:PORT"),
            },
            "--cache" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => config.cache_capacity = n,
                _ => usage_error("--cache needs a positive integer"),
            },
            "--disk-cache" => match args.next() {
                Some(p) if !p.is_empty() => config.disk_path = Some(p.into()),
                _ => usage_error("--disk-cache needs a file path"),
            },
            "--idle-timeout" => {
                config.idle_timeout = Some(parse_millis("--idle-timeout", args.next()));
            }
            "--read-deadline" => {
                config.read_deadline = Some(parse_millis("--read-deadline", args.next()));
            }
            "--quiet" => config.verbose = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let server = match Server::bind(&addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ised: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("ised listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    if let Err(e) = server.run() {
        eprintln!("ised: server error: {e}");
        std::process::exit(1);
    }
}
