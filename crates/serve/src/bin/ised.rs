//! `ised` — the ISE selection daemon.
//!
//! ```sh
//! ised                         # 127.0.0.1:9417, cache capacity 64
//! ised --addr 0.0.0.0:7000 --cache 256
//! ised --addr 127.0.0.1:0      # ephemeral port, printed on stdout
//! ```
//!
//! Logs go to stderr; the "listening on" line goes to stdout so
//! supervisors (and the CI smoke test) can scrape the bound address.

use isegen_serve::{Server, ServerConfig};
use std::io::Write as _;

const USAGE: &str = "usage: ised [--addr HOST:PORT] [--cache N] [--quiet]
  --addr HOST:PORT  listen address (default 127.0.0.1:9417; port 0 = ephemeral)
  --cache N         LRU capacity in applications (default 64)
  --quiet           suppress per-request logging on stderr";

/// Prints usage and exits with code 2 — the CLI-contract shared with the
/// eval binaries: bad arguments are a usage error, not a panic.
fn usage_error(message: &str) -> ! {
    eprintln!("ised: {message}\n{USAGE}");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:9417".to_string();
    let mut cache = 64usize;
    let mut verbose = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => usage_error("--addr needs HOST:PORT"),
            },
            "--cache" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => cache = n,
                _ => usage_error("--cache needs a positive integer"),
            },
            "--quiet" => verbose = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let server = match Server::bind(
        &addr,
        ServerConfig {
            cache_capacity: cache,
            verbose,
        },
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("ised: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("ised listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    if let Err(e) = server.run() {
        eprintln!("ised: server error: {e}");
        std::process::exit(1);
    }
}
