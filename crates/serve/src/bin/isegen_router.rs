//! `isegen-router` — fault-tolerant sharded front over N supervised
//! `ised` backends.
//!
//! ```sh
//! isegen-router --shards 3 --state-dir /var/lib/ised-fleet
//! isegen-router --addr 127.0.0.1:0 --ised target/release/ised
//! ```
//!
//! Speaks the same wire protocol as `ised` (plus `drain` with a
//! `"shard"` index); consistent-hashes requests by canonical-IR key;
//! retries, fails over and degrades to an in-process engine when the
//! whole fleet is down. The "listening on" line goes to stdout so
//! supervisors can scrape the bound address.

use isegen_serve::fleet::{Fleet, FleetConfig, Router};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: isegen-router [--addr HOST:PORT] [--shards N] [--ised PATH]
                     [--state-dir DIR] [--cache N] [--request-timeout MS]
                     [--health-interval MS] [--idle-timeout MS]
                     [--read-deadline MS] [--quiet]
  --addr HOST:PORT     listen address (default 127.0.0.1:9418; port 0 = ephemeral)
  --shards N           number of ised backends to spawn (default 3)
  --ised PATH          ised binary (default: next to this binary, else PATH)
  --state-dir DIR      per-shard disk caches and logs (default ised-fleet)
  --cache N            LRU capacity per shard (default 64)
  --request-timeout MS per-attempt response deadline (default 120000)
  --health-interval MS health-check cadence (default 250)
  --idle-timeout MS    close idle client connections after MS
  --read-deadline MS   client requests must arrive fully within MS
  --quiet              suppress routing logs on stderr";

fn usage_error(message: &str) -> ! {
    eprintln!("isegen-router: {message}\n{USAGE}");
    std::process::exit(2);
}

fn parse_millis(flag: &str, value: Option<String>) -> Duration {
    match value.map(|v| v.parse::<u64>()) {
        Some(Ok(ms)) if ms > 0 => Duration::from_millis(ms),
        _ => usage_error(&format!("{flag} needs a positive millisecond count")),
    }
}

/// The `ised` binary shipped alongside this one, falling back to PATH
/// lookup — covers both `target/release` layouts and installed trees.
fn sibling_ised() -> PathBuf {
    if let Ok(me) = std::env::current_exe() {
        if let Some(dir) = me.parent() {
            let candidate = dir.join("ised");
            if candidate.is_file() {
                return candidate;
            }
        }
    }
    PathBuf::from("ised")
}

fn main() {
    let mut addr = "127.0.0.1:9418".to_string();
    let mut config = FleetConfig {
        ised_bin: sibling_ised(),
        ..FleetConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => usage_error("--addr needs HOST:PORT"),
            },
            "--shards" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => config.shards = n,
                _ => usage_error("--shards needs a positive integer"),
            },
            "--ised" => match args.next() {
                Some(p) if !p.is_empty() => config.ised_bin = p.into(),
                _ => usage_error("--ised needs a path"),
            },
            "--state-dir" => match args.next() {
                Some(p) if !p.is_empty() => config.state_dir = p.into(),
                _ => usage_error("--state-dir needs a directory path"),
            },
            "--cache" => match args.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => config.cache_capacity = n,
                _ => usage_error("--cache needs a positive integer"),
            },
            "--request-timeout" => {
                config.request_timeout = parse_millis("--request-timeout", args.next());
            }
            "--health-interval" => {
                config.health_interval = parse_millis("--health-interval", args.next());
            }
            "--idle-timeout" => {
                config.idle_timeout = Some(parse_millis("--idle-timeout", args.next()));
            }
            "--read-deadline" => {
                config.read_deadline = Some(parse_millis("--read-deadline", args.next()));
            }
            "--quiet" => config.verbose = false,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => usage_error(&format!("unknown argument {other:?}")),
        }
    }

    let fleet = match Fleet::start(config) {
        Ok(fleet) => fleet,
        Err(e) => {
            eprintln!("isegen-router: cannot start fleet: {e}");
            std::process::exit(1);
        }
    };
    let router = match Router::bind(&addr, fleet) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("isegen-router: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("isegen-router listening on {}", router.local_addr());
    let _ = std::io::stdout().flush();
    if let Err(e) = router.run() {
        eprintln!("isegen-router: router error: {e}");
        std::process::exit(1);
    }
}
