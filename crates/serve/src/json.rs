//! A minimal JSON value, parser and writer — the wire encoding of the
//! `ised` protocol.
//!
//! The build image has no crates.io access, so this is hand-rolled over
//! `std` only. The parser is a recursive-descent reader with an explicit
//! depth limit; like everything on the service path it returns errors and
//! never panics, whatever the input (fuzzed in the crate tests).

use std::fmt;

/// Maximum nesting depth the parser accepts. Protocol messages are ~3
/// levels deep; the limit exists so hostile input cannot overflow the
/// stack.
const MAX_DEPTH: usize = 64;

/// A JSON value. Objects preserve insertion order (deterministic output,
/// no hashing).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (first match); `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs.
    pub fn obj(members: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if !n.is_finite() {
                    // Not representable in JSON; null is the honest choice.
                    f.write_str("null")
                } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, token: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat("null", Json::Null),
            Some(b't') => self.eat("true", Json::Bool(true)),
            Some(b'f') => self.eat("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if self.peek() != Some(b':') {
                        return Err(self.err("expected ':'"));
                    }
                    self.pos += 1;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        if self.peek() != Some(b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The slice boundaries sit on ASCII delimiters, so this is
            // valid UTF-8 iff the input was.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid surrogate pair"));
                                }
                                let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c).ok_or_else(|| self.err("invalid codepoint"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("lone surrogate"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while p.peek().is_some_and(|c| c.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > from
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("number out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let cases = [
            r#"null"#,
            r#"true"#,
            r#"-12"#,
            r#"3.25"#,
            r#""he\"llo\n""#,
            r#"[1,[2,"x"],{}]"#,
            r#"{"op":"select","io":[4,2],"reuse":true,"w":{"merit":1.5}}"#,
        ];
        for text in cases {
            let v = parse(text).unwrap();
            let emitted = v.to_string();
            assert_eq!(parse(&emitted).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a":"s","n":3,"b":true,"arr":[1,2]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_str), Some("s"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("arr").and_then(Json::as_array).map(<[_]>::len),
            Some(2)
        );
        assert!(v.get("missing").is_none());
        assert_eq!(parse("2.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("\u{1F600}".into()));
        assert!(parse(r#""\ud83d""#).is_err(), "lone surrogate");
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        let cases = [
            "",
            "{",
            "}",
            "[1,",
            "tru",
            r#""unterminated"#,
            "01x",
            "1.",
            "--3",
            "{\"a\"}",
            "{\"a\":}",
            "[1 2]",
            "nul",
            "\u{7f}",
            "{{{{",
            "1e",
            r#""\q""#,
            r#""\u12"#,
            "[1]]",
        ];
        for text in cases {
            assert!(parse(text).is_err(), "{text:?} should fail");
        }
        // Depth bomb: errors (no stack overflow, no panic).
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn control_chars_escaped() {
        let s = Json::Str("a\u{1}b".into()).to_string();
        assert_eq!(s, "\"a\\u0001b\"");
        assert_eq!(parse(&s).unwrap(), Json::Str("a\u{1}b".into()));
    }
}
