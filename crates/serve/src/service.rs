//! The transport-independent half of `ised`: everything between a parsed
//! request and its JSON response.
//!
//! [`Service`] owns the [`ServeCache`] (with its optional disk tier) and
//! the request/search counters, and executes the cache-and-compute ops —
//! `ping`, `submit`, `select`, `rtl`, `verify`, `stats`. Connection- and
//! process-level ops (`shutdown`, `drain`) stay with the transport that
//! embeds the service: the TCP [`crate::Server`], or the router's
//! in-process fallback path, which calls straight into [`Service::handle`]
//! when every shard of the fleet is unreachable.

use crate::cache::{AppEntry, SelectionKey, ServeCache, SubmitError};
use crate::json::{self, Json};
use crate::proto::{self, ProtoError, RequestConfig};
use isegen_analysis::{LintOptions, Severity};
use isegen_core::{CacheStats, Generator, IseSelection, IsegenFinder};
use isegen_ir::text::TextError;
use isegen_rtl::{verify_selection, AfuLibrary, VerifyConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The cache-and-compute request engine shared by every front-end.
pub struct Service {
    cache: ServeCache,
    label: &'static str,
    verbose: bool,
    requests: AtomicU64,
    errors: AtomicU64,
    /// `verify` requests served and total stimulus vectors they drove
    /// through the three-way oracle (vectors × ISEs), for `stats`.
    verifications: AtomicU64,
    verified_vectors: AtomicU64,
    /// `lint` requests served, for `stats`.
    lints: AtomicU64,
    /// K-L probe/arena statistics absorbed from every computed (non-memo)
    /// selection, surfaced by the `stats` op.
    search_stats: Mutex<CacheStats>,
}

impl Service {
    /// Wraps `cache` in a service. `label` prefixes log lines; `verbose`
    /// enables them.
    pub fn new(cache: ServeCache, label: &'static str, verbose: bool) -> Service {
        Service {
            cache,
            label,
            verbose,
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            verifications: AtomicU64::new(0),
            verified_vectors: AtomicU64::new(0),
            lints: AtomicU64::new(0),
            search_stats: Mutex::new(CacheStats::default()),
        }
    }

    /// The shared cache (exposed for in-process tests and stats).
    pub fn cache(&self) -> &ServeCache {
        &self.cache
    }

    /// Requests handled so far (including errored ones).
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Counts a transport-level request (`shutdown`/`drain`) the
    /// embedding server handled itself.
    pub fn count_control_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts a request that failed before dispatch (framing or parse
    /// errors, broken deadlines).
    pub fn count_error_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    fn log(&self, message: impl AsRef<str>) {
        if self.verbose {
            eprintln!("[{}] {}", self.label, message.as_ref());
        }
    }

    /// Counts and executes one parsed request. Unknown ops — including
    /// the transport-level `shutdown`/`drain` a caller should have
    /// intercepted — return a structured `protocol` error.
    pub fn handle(&self, request: &Json) -> Result<Json, ProtoError> {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let result = self.dispatch(request);
        if result.is_err() {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    /// Parses one request document and [`Self::handle`]s it.
    pub fn handle_bytes(&self, raw: &[u8]) -> Result<Json, ProtoError> {
        // Invalid UTF-8 degrades into replacement characters and then a
        // structured JSON parse error — never a panic.
        let text = String::from_utf8_lossy(raw);
        let request = json::parse(text.trim()).map_err(|e| {
            self.count_error_request();
            ProtoError::new("parse", e.to_string())
        })?;
        self.handle(&request)
    }

    fn dispatch(&self, request: &Json) -> Result<Json, ProtoError> {
        let op = request
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::new("protocol", "request needs a string \"op\""))?;
        match op {
            "ping" => Ok(Json::obj([("ok", Json::Bool(true)), ("op", "pong".into())])),
            "submit" => self.op_submit(request),
            "select" => self.op_select(request),
            "rtl" => self.op_rtl(request),
            "verify" => self.op_verify(request),
            "lint" => self.op_lint(request),
            "stats" => Ok(self.stats_json()),
            other => Err(ProtoError::new(
                "protocol",
                format!(
                    "unknown op {other:?} (ping/submit/select/rtl/verify/lint/stats/drain/shutdown)"
                ),
            )),
        }
    }

    fn op_submit(&self, request: &Json) -> Result<Json, ProtoError> {
        let (hash, entry, fresh) = self.submit_ir(request)?;
        self.log(format!(
            "submit {} → {} ({})",
            entry.app.name(),
            proto::format_hash(hash),
            if fresh { "new" } else { "cached" }
        ));
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("op", "submit".into()),
            ("app", proto::format_hash(hash).into()),
            ("name", entry.app.name().into()),
            ("blocks", entry.app.blocks().len().into()),
            (
                "ops",
                entry
                    .app
                    .blocks()
                    .iter()
                    .map(|b| b.operation_count())
                    .sum::<usize>()
                    .into(),
            ),
            ("cached", Json::Bool(!fresh)),
        ]))
    }

    /// Resolves the application of a request: `app` (a hash from an
    /// earlier submit) or inline `ir`.
    fn resolve_app(&self, request: &Json) -> Result<(u64, Arc<AppEntry>), ProtoError> {
        if let Some(hash) = request.get("app") {
            let hash = hash
                .as_str()
                .ok_or_else(|| ProtoError::new("protocol", "\"app\" must be a hash string"))
                .and_then(proto::parse_hash)?;
            let entry = self.cache.get(hash).ok_or_else(|| {
                ProtoError::new(
                    "not_found",
                    format!(
                        "no app {} in cache (submit it first)",
                        proto::format_hash(hash)
                    ),
                )
            })?;
            return Ok((hash, entry));
        }
        let (hash, entry, _) = self.submit_ir(request)?;
        Ok((hash, entry))
    }

    fn submit_ir(&self, request: &Json) -> Result<(u64, Arc<AppEntry>, bool), ProtoError> {
        let ir = request.get("ir").and_then(Json::as_str).ok_or_else(|| {
            ProtoError::new("protocol", "request needs \"ir\" text or an \"app\" hash")
        })?;
        self.cache.submit(ir).map_err(|e| {
            let kind = match e {
                SubmitError::Ir(_) => "ir",
                SubmitError::HashCollision => "collision",
            };
            let err = ProtoError::new(kind, e.to_string());
            match e {
                // Line 0 is the parser's premature-end sentinel: there
                // is no source position to report in that case.
                SubmitError::Ir(te) if te.line() > 0 => {
                    err.with_position(te.line() as u32, error_column(ir, &te))
                }
                _ => err,
            }
        })
    }

    /// Computes (or recalls) the selection for `entry` under `config`.
    fn selection(
        &self,
        hash: u64,
        entry: &AppEntry,
        config: &RequestConfig,
    ) -> (Arc<IseSelection>, bool) {
        let key = SelectionKey::new(&config.ise, &config.search);
        if let Some(found) = entry.cached_selection(&key) {
            self.cache.count_selection(true);
            return (found, true);
        }
        self.cache.count_selection(false);
        let contexts = entry.contexts();
        let finder = IsegenFinder::new(config.search.clone())
            .with_portfolio_threads(config.portfolio_threads);
        let mut gen = Generator::new(config.ise)
            .finder(finder)
            .threads(config.threads);
        let selection = gen.run_in_contexts(&contexts);
        // Worker clones report into the finder's shared accumulator, so
        // this covers the batched path too.
        if let Ok(mut acc) = self.search_stats.lock() {
            acc.absorb(gen.finder_ref().accumulated_stats());
        }
        let selection = Arc::new(selection);
        // Memoise *and* write through to the disk tier, so a restarted
        // process replays this selection instead of recomputing it.
        self.cache
            .record_selection(hash, entry, key, Arc::clone(&selection));
        (selection, false)
    }

    fn op_select(&self, request: &Json) -> Result<Json, ProtoError> {
        let (hash, entry) = self.resolve_app(request)?;
        let config = proto::parse_config(request.get("config"))?;
        let (selection, hit) = self.selection(hash, &entry, &config);
        self.log(format!(
            "select {} → {} ISEs ({})",
            proto::format_hash(hash),
            selection.ises.len(),
            if hit { "memo hit" } else { "computed" }
        ));
        let ises: Vec<Json> = selection
            .ises
            .iter()
            .map(|ise| {
                Json::obj([
                    ("block", ise.block_index.into()),
                    (
                        "block_name",
                        entry.app.blocks()[ise.block_index].name().into(),
                    ),
                    ("nodes", ise.cut.nodes().len().into()),
                    ("inputs", u64::from(ise.cut.input_count()).into()),
                    ("outputs", u64::from(ise.cut.output_count()).into()),
                    ("saved_per_execution", ise.saved_per_execution.into()),
                    ("instances", ise.instances.len().into()),
                ])
            })
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("op", "select".into()),
            ("app", proto::format_hash(hash).into()),
            ("speedup", selection.speedup().into()),
            ("total_sw_cycles", selection.total_sw_cycles.into()),
            ("saved_cycles", selection.saved_cycles.into()),
            ("instances", selection.instance_count().into()),
            ("ises", Json::Arr(ises)),
            ("cache", if hit { "hit" } else { "miss" }.into()),
        ]))
    }

    fn op_rtl(&self, request: &Json) -> Result<Json, ProtoError> {
        let (hash, entry) = self.resolve_app(request)?;
        let config = proto::parse_config(request.get("config"))?;
        let (selection, hit) = self.selection(hash, &entry, &config);
        let library = AfuLibrary::from_selection(&entry.app, self.cache.model(), &selection)
            .map_err(|e| ProtoError::new("rtl", e.to_string()))?;
        self.log(format!(
            "rtl {} → {} instructions, {:.0} gates",
            proto::format_hash(hash),
            library.instructions().len(),
            library.total_gates()
        ));
        let instructions: Vec<Json> = library
            .instructions()
            .iter()
            .map(|inst| {
                Json::obj([
                    ("name", inst.name.as_str().into()),
                    ("cells", inst.netlist.cell_count().into()),
                    ("inputs", inst.netlist.input_count().into()),
                    ("outputs", inst.netlist.output_count().into()),
                    ("gates", inst.gates.into()),
                    ("delay", inst.delay.into()),
                    ("saved_per_execution", inst.saved_per_execution.into()),
                    ("instances", inst.instance_count.into()),
                ])
            })
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("op", "rtl".into()),
            ("app", proto::format_hash(hash).into()),
            ("gates", library.total_gates().into()),
            ("instructions", Json::Arr(instructions)),
            ("verilog", library.emit_verilog().into()),
            ("cache", if hit { "hit" } else { "miss" }.into()),
        ]))
    }

    /// Runs the three-way differential oracle (interpreter ⇔ netlist ⇔
    /// parsed-and-simulated emitted Verilog) over every selected ISE.
    fn op_verify(&self, request: &Json) -> Result<Json, ProtoError> {
        let (hash, entry) = self.resolve_app(request)?;
        let config = proto::parse_config(request.get("config"))?;
        let (vectors, seed) = proto::parse_verify_params(request)?;
        let (selection, hit) = self.selection(hash, &entry, &config);
        let verify_config = VerifyConfig { vectors, seed };
        let reports = verify_selection(&entry.app, &selection, &verify_config)
            .map_err(|e| ProtoError::new("rtl", e.to_string()))?;
        let mismatches: usize = reports.iter().map(|r| r.mismatches).sum();
        self.verifications.fetch_add(1, Ordering::Relaxed);
        self.verified_vectors.fetch_add(
            (vectors as u64).saturating_mul(reports.len() as u64),
            Ordering::Relaxed,
        );
        self.log(format!(
            "verify {} → {} ISEs × {} vectors, {} mismatch(es)",
            proto::format_hash(hash),
            reports.len(),
            vectors,
            mismatches
        ));
        let ises: Vec<Json> = reports
            .iter()
            .map(|r| {
                Json::obj([
                    ("name", r.module.as_str().into()),
                    ("cells", r.cells.into()),
                    ("vectors", r.vectors.into()),
                    ("mismatches", r.mismatches.into()),
                    (
                        "output_bits_covered",
                        Json::Arr(
                            r.output_bits_covered
                                .iter()
                                .map(|&b| u64::from(b).into())
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("op", "verify".into()),
            ("app", proto::format_hash(hash).into()),
            ("vectors_per_ise", vectors.into()),
            ("mismatches", mismatches.into()),
            ("passed", Json::Bool(mismatches == 0)),
            ("ises", Json::Arr(ises)),
            ("cache", if hit { "hit" } else { "miss" }.into()),
        ]))
    }

    /// Runs the static-analysis pass registry (`A001..`) over the
    /// application's blocks and reports every diagnostic, positioned
    /// against the app's canonical text form.
    fn op_lint(&self, request: &Json) -> Result<Json, ProtoError> {
        let (hash, entry) = self.resolve_app(request)?;
        let config = proto::parse_config(request.get("config"))?;
        let opts = LintOptions {
            io: config.ise.io,
            ..LintOptions::default()
        };
        let diagnostics = isegen_analysis::analyze_with(&entry.app, &opts);
        let errors = diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count();
        let warnings = diagnostics.len() - errors;
        self.lints.fetch_add(1, Ordering::Relaxed);
        self.log(format!(
            "lint {} → {} diagnostic(s) ({} error(s), {} warning(s))",
            proto::format_hash(hash),
            diagnostics.len(),
            errors,
            warnings
        ));
        let items: Vec<Json> = diagnostics
            .iter()
            .map(|d| {
                Json::obj([
                    ("code", d.code.into()),
                    ("severity", d.severity.name().into()),
                    ("block", d.block.as_str().into()),
                    ("node", d.node.map_or(Json::Null, Json::from)),
                    ("line", d.line.map_or(Json::Null, Json::from)),
                    ("message", d.message.as_str().into()),
                ])
            })
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("op", "lint".into()),
            ("app", proto::format_hash(hash).into()),
            ("count", diagnostics.len().into()),
            ("errors", errors.into()),
            ("warnings", warnings.into()),
            ("clean", Json::Bool(diagnostics.is_empty())),
            ("diagnostics", Json::Arr(items)),
        ]))
    }

    /// The service-level `stats` document. Transports append their own
    /// members (connections, shard tables) before responding.
    pub fn stats_json(&self) -> Json {
        let c = self.cache.counters();
        let s = self.search_stats.lock().map(|s| *s).unwrap_or_default();
        let mut stats = Json::obj([
            ("ok", Json::Bool(true)),
            ("op", "stats".into()),
            ("entries", c.entries.into()),
            ("context_hits", c.context_hits.into()),
            ("context_misses", c.context_misses.into()),
            ("selection_hits", c.selection_hits.into()),
            ("selection_misses", c.selection_misses.into()),
            ("evictions", c.evictions.into()),
            ("requests", self.requests.load(Ordering::Relaxed).into()),
            ("errors", self.errors.load(Ordering::Relaxed).into()),
            (
                "verifications",
                self.verifications.load(Ordering::Relaxed).into(),
            ),
            (
                "verified_vectors",
                self.verified_vectors.load(Ordering::Relaxed).into(),
            ),
            ("lints", self.lints.load(Ordering::Relaxed).into()),
            // K-L search statistics summed over every computed selection:
            // the service-level view of the gain cache and arena pools.
            (
                "search",
                Json::obj([
                    ("fresh_probes", s.fresh_probes.into()),
                    ("cached_probes", s.cached_probes.into()),
                    ("probes_avoided_pct", (s.avoided_fraction() * 100.0).into()),
                    ("commits", s.commits.into()),
                    ("full_invalidations", s.full_invalidations.into()),
                    ("trajectories", s.trajectories.into()),
                    ("arena_reuses", s.arena_reuses.into()),
                    ("arena_allocs", s.arena_allocs.into()),
                ]),
            ),
        ]);
        // The crash-warm tier, when configured: what was replayed on
        // boot and what has been persisted since.
        if let Some(d) = self.cache.disk_counters() {
            if let Json::Obj(members) = &mut stats {
                members.push((
                    "disk".to_string(),
                    Json::obj([
                        ("appends", d.appends.into()),
                        ("append_errors", d.append_errors.into()),
                        ("replayed_apps", d.replayed_apps.into()),
                        ("replayed_selections", d.replayed_selections.into()),
                        ("skipped_records", d.skipped_records.into()),
                        ("truncated_bytes", d.truncated_bytes.into()),
                    ]),
                ));
            }
        }
        stats
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("label", &self.label)
            .field("cache", &self.cache)
            .finish()
    }
}

/// Best-effort 1-based column of a parse error: locates the offending
/// token on the error's source line. `None` when the error carries no
/// token or the token is not literally on that line.
fn error_column(ir: &str, err: &TextError) -> Option<u32> {
    let token = err.token()?;
    let line = err.line().checked_sub(1)?;
    let text = ir.lines().nth(line)?;
    let byte = text.find(token)?;
    u32::try_from(text[..byte].chars().count() + 1).ok()
}
