//! One supervised `ised` shard: the spawned child process, its scraped
//! address, and the per-request client plumbing the router uses to talk
//! to it.
//!
//! A backend owns its shard's *durable identity* — the disk-cache log
//! and stderr log paths — while the child process is disposable: kill
//! it, respawn it, and the new process replays the log and comes back
//! warm. Requests use one short-lived connection each, so a mid-request
//! crash poisons nothing shared.

use crate::fleet::breaker::Breaker;
use crate::wire::{self, FrameRead, Framing, WireLimits};
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Everything needed to (re)spawn one shard.
#[derive(Debug, Clone)]
pub struct BackendConfig {
    /// Path to the `ised` binary.
    pub ised_bin: PathBuf,
    /// The shard's append-only cache log (its durable memory).
    pub disk_path: PathBuf,
    /// Where the child's stderr goes (appended across restarts).
    pub log_path: PathBuf,
    /// LRU capacity passed to the child.
    pub cache_capacity: usize,
    /// How long to wait for the child's "listening on" banner.
    pub spawn_deadline: Duration,
    /// TCP connect timeout per request attempt.
    pub connect_timeout: Duration,
    /// First-byte-to-complete-response deadline per request attempt.
    pub request_timeout: Duration,
}

/// Why a backend request failed (transport level — a structured error
/// *response* from the shard is a success at this layer).
#[derive(Debug)]
pub enum BackendError {
    /// No live child (never spawned, or known dead).
    NotRunning,
    /// Connect/read/write failure or timeout.
    Io(io::Error),
    /// The shard sent bytes that are not one well-formed frame.
    BadResponse(&'static str),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::NotRunning => write!(f, "shard is not running"),
            BackendError::Io(e) => write!(f, "transport: {e}"),
            BackendError::BadResponse(why) => write!(f, "bad response: {why}"),
        }
    }
}

impl std::error::Error for BackendError {}

#[derive(Debug, Default)]
struct Proc {
    child: Option<Child>,
    addr: Option<SocketAddr>,
}

/// A supervised shard; see the module docs.
#[derive(Debug)]
pub struct Backend {
    /// Shard index (position on the ring).
    pub index: usize,
    config: BackendConfig,
    /// Routing admission for this shard.
    pub breaker: Breaker,
    proc: Mutex<Proc>,
    /// Set while a drain owns this backend's lifecycle, so the health
    /// loop does not race the drain with its own respawn.
    pub hold: AtomicBool,
    /// Whether a child ever booted — distinguishes the first spawn from
    /// a restart even after `child_dead` reaped the previous process.
    booted: AtomicBool,
    /// Times a child was (re)spawned, not counting the first boot.
    pub restarts: AtomicU64,
    /// Requests forwarded to this shard that produced a response.
    pub forwarded: AtomicU64,
    /// Transport-level failures talking to this shard.
    pub failures: AtomicU64,
}

impl Backend {
    /// A backend that has not spawned its child yet.
    pub fn new(
        index: usize,
        config: BackendConfig,
        breaker_threshold: u32,
        breaker_open_for: Duration,
    ) -> Backend {
        Backend {
            index,
            config,
            breaker: Breaker::new(breaker_threshold, breaker_open_for),
            proc: Mutex::new(Proc::default()),
            hold: AtomicBool::new(false),
            booted: AtomicBool::new(false),
            restarts: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            failures: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Proc> {
        self.proc.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The child's bound address, if it is (believed) running.
    pub fn addr(&self) -> Option<SocketAddr> {
        self.lock().addr
    }

    /// The child's OS pid, if running.
    pub fn pid(&self) -> Option<u32> {
        self.lock().child.as_ref().map(Child::id)
    }

    /// True when there is no live child: never spawned, or the process
    /// has exited (reaps the zombie as a side effect).
    pub fn child_dead(&self) -> bool {
        let mut proc = self.lock();
        match proc.child.as_mut() {
            None => true,
            Some(child) => match child.try_wait() {
                Ok(Some(_)) => {
                    proc.child = None;
                    proc.addr = None;
                    true
                }
                Ok(None) => false,
                // try_wait erroring means we cannot reason about the
                // child; treat it as dead so the supervisor respawns.
                Err(_) => true,
            },
        }
    }

    /// (Re)spawns the child, scrapes its listening address from stdout,
    /// and closes the breaker. Any previous child is killed first. On
    /// success the counter distinguishes restarts from the first boot.
    pub fn spawn(&self) -> io::Result<()> {
        let mut proc = self.lock();
        if let Some(mut old) = proc.child.take() {
            let _ = old.kill();
            let _ = old.wait();
        }
        proc.addr = None;

        let log = File::options()
            .create(true)
            .append(true)
            .open(&self.config.log_path)?;
        let mut child = Command::new(&self.config.ised_bin)
            .arg("--addr")
            .arg("127.0.0.1:0")
            .arg("--cache")
            .arg(self.config.cache_capacity.to_string())
            .arg("--disk-cache")
            .arg(&self.config.disk_path)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::from(log))
            .spawn()?;

        // Scrape the banner on a throwaway thread so a child that never
        // prints cannot hang the supervisor past the deadline. The
        // thread keeps draining stdout afterwards (the child never
        // writes more, but a blocked pipe must not be our failure mode).
        let stdout = child.stdout.take().ok_or_else(|| {
            io::Error::new(io::ErrorKind::BrokenPipe, "child stdout not captured")
        })?;
        let (tx, rx) = mpsc::channel::<Option<SocketAddr>>();
        std::thread::spawn(move || {
            let mut lines = BufReader::new(stdout);
            let mut line = String::new();
            let banner = match lines.read_line(&mut line) {
                Ok(n) if n > 0 => line
                    .trim()
                    .strip_prefix("ised listening on ")
                    .and_then(|a| a.parse().ok()),
                _ => None,
            };
            let _ = tx.send(banner);
            loop {
                line.clear();
                match lines.read_line(&mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
        });
        let addr = match rx.recv_timeout(self.config.spawn_deadline) {
            Ok(Some(addr)) => addr,
            Ok(None) | Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("shard {} printed no listening banner", self.index),
                ));
            }
        };

        proc.child = Some(child);
        proc.addr = Some(addr);
        if self.booted.swap(true, Ordering::SeqCst) {
            self.restarts.fetch_add(1, Ordering::Relaxed);
        }
        self.breaker.reset();
        Ok(())
    }

    /// Sends one framed request and reads one framed response over a
    /// fresh connection. Transport failures are counted here; breaker
    /// bookkeeping is the router's call to make (a health probe and a
    /// routed request weigh differently).
    pub fn request(&self, body: &[u8], stop: &AtomicBool) -> Result<Vec<u8>, BackendError> {
        self.request_with_deadline(body, stop, self.config.request_timeout)
    }

    /// [`Self::request`] with an explicit response deadline — health
    /// probes use a much shorter one than routed work.
    pub fn request_with_deadline(
        &self,
        body: &[u8],
        stop: &AtomicBool,
        deadline: Duration,
    ) -> Result<Vec<u8>, BackendError> {
        let result = self.request_inner(body, stop, deadline);
        match &result {
            Ok(_) => {
                self.forwarded.fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
            }
        }
        result
    }

    fn request_inner(
        &self,
        body: &[u8],
        stop: &AtomicBool,
        deadline: Duration,
    ) -> Result<Vec<u8>, BackendError> {
        let addr = self.addr().ok_or(BackendError::NotRunning)?;
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)
            .map_err(BackendError::Io)?;
        stream
            .set_read_timeout(Some(wire::POLL_INTERVAL))
            .map_err(BackendError::Io)?;
        stream
            .set_write_timeout(Some(deadline))
            .map_err(BackendError::Io)?;
        let mut writer = stream.try_clone().map_err(BackendError::Io)?;
        // Always length-prefixed shard-side: any payload (embedded
        // newlines included) forwards unmodified.
        wire::write_frame(&mut writer, body, Framing::Prefixed).map_err(BackendError::Io)?;
        let limits = WireLimits {
            idle: Some(deadline),
            deadline: Some(deadline),
            ..WireLimits::default()
        };
        let mut reader = BufReader::new(stream);
        let mut buf = Vec::new();
        match wire::read_frame(&mut reader, &mut buf, &limits, stop).map_err(BackendError::Io)? {
            FrameRead::Frame(_) => Ok(buf),
            FrameRead::Eof => Err(BackendError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "shard closed mid-request",
            ))),
            FrameRead::Stopped => Err(BackendError::Io(io::Error::new(
                io::ErrorKind::Interrupted,
                "router stopping",
            ))),
            FrameRead::IdleTimeout | FrameRead::DeadlineExceeded => Err(BackendError::Io(
                io::Error::new(io::ErrorKind::TimedOut, "shard response timed out"),
            )),
            FrameRead::TooLong(_) => Err(BackendError::BadResponse("oversized response")),
            FrameRead::Malformed(why) => Err(BackendError::BadResponse(why)),
        }
    }

    /// Waits up to `deadline` for the child to exit on its own (after a
    /// drain request), polling `try_wait`. Returns whether it exited.
    pub fn wait_exit(&self, deadline: Duration) -> bool {
        let t0 = Instant::now();
        loop {
            if self.child_dead() {
                return true;
            }
            if t0.elapsed() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    /// Kills the child outright (SIGKILL) and reaps it.
    pub fn kill(&self) {
        let mut proc = self.lock();
        if let Some(mut child) = proc.child.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
        proc.addr = None;
    }
}

impl Drop for Backend {
    fn drop(&mut self) {
        // Never orphan a shard process, even on panic paths.
        self.kill();
    }
}
