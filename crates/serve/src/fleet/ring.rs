//! Consistent-hash ring over the fleet's shards.
//!
//! Each shard owns [`VNODES_PER_SHARD`] points on a 64-bit ring (the
//! FNV-1a hashes of `shard-<i>/vnode-<v>`); a request key routes to the
//! shard owning the first point at or after it. Virtual nodes keep the
//! load split even for small fleets, and the failover order for a key —
//! the distinct shards met walking the ring — is deterministic, so
//! retries from different router threads agree on where to go next.

use crate::cache::fnv1a;

/// Ring points per shard. 64 keeps the per-shard load within a few
/// percent of even for fleets of 2–16 shards.
pub const VNODES_PER_SHARD: usize = 64;

/// The placement function of the fleet; see the module docs.
#[derive(Debug)]
pub struct Ring {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl Ring {
    /// A ring over `shards` shards (at least one).
    pub fn new(shards: usize) -> Ring {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * VNODES_PER_SHARD);
        for shard in 0..shards {
            for vnode in 0..VNODES_PER_SHARD {
                let label = format!("shard-{shard}/vnode-{vnode}");
                points.push((fnv1a(label.as_bytes()), shard));
            }
        }
        points.sort_unstable();
        Ring { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Index of the first ring point at or after `key` (wrapping).
    fn first_point(&self, key: u64) -> usize {
        match self.points.binary_search_by(|&(p, _)| p.cmp(&key)) {
            Ok(i) => i,
            Err(i) if i == self.points.len() => 0,
            Err(i) => i,
        }
    }

    /// The shard a key routes to when everything is healthy.
    pub fn shard_for(&self, key: u64) -> usize {
        self.points[self.first_point(key)].1
    }

    /// All shards in failover order for `key`: the distinct shards met
    /// walking the ring clockwise from the key's point. Always has
    /// exactly [`Self::shards`] entries, the primary first.
    pub fn preference(&self, key: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.shards);
        let start = self.first_point(key);
        for offset in 0..self.points.len() {
            let shard = self.points[(start + offset) % self.points.len()].1;
            if !order.contains(&shard) {
                order.push(shard);
                if order.len() == self.shards {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preference_lists_every_shard_once_primary_first() {
        let ring = Ring::new(5);
        for key in [0u64, 1, u64::MAX, fnv1a(b"some app")] {
            let order = ring.preference(key);
            assert_eq!(order.len(), 5);
            assert_eq!(order[0], ring.shard_for(key));
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn load_is_roughly_even() {
        let ring = Ring::new(3);
        let mut counts = [0usize; 3];
        for i in 0..3000u64 {
            counts[ring.shard_for(fnv1a(&i.to_le_bytes()))] += 1;
        }
        for &c in &counts {
            // Within a factor of two of the fair share of 1000.
            assert!((500..=2000).contains(&c), "skewed split: {counts:?}");
        }
    }

    #[test]
    fn placement_is_stable_across_identical_rings() {
        let a = Ring::new(4);
        let b = Ring::new(4);
        for i in 0..100u64 {
            let key = fnv1a(&i.to_le_bytes());
            assert_eq!(a.preference(key), b.preference(key));
        }
    }

    #[test]
    fn single_shard_ring_routes_everything_to_it() {
        let ring = Ring::new(1);
        assert_eq!(ring.shard_for(12345), 0);
        assert_eq!(ring.preference(12345), vec![0]);
    }
}
