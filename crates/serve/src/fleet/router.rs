//! The routing core ([`Fleet`]) and the TCP front ([`Router`]) of
//! `isegen-router`.
//!
//! A [`Fleet`] owns the shards and makes every reliability decision:
//! where a key routes ([`crate::fleet::ring::Ring`] preference order),
//! when to retry (bounded exponential backoff on the same shard), when
//! to fail over (next shard on the ring whose breaker admits traffic),
//! how to heal a failover shard that has never seen the application
//! (re-submit the canonical IR the router remembers), and when to give
//! up on the network entirely (answer from the in-process fallback
//! [`Service`] — the same engine the shards run, so degraded answers
//! are byte-identical to healthy ones).
//!
//! The [`Router`] is a thin transport: the same framing, deadline and
//! prompt-shutdown machinery as [`crate::Server`], with requests handed
//! to the fleet instead of a local service.

use crate::cache::{fnv1a, ServeCache};
use crate::fleet::backend::{Backend, BackendConfig};
use crate::fleet::ring::Ring;
use crate::json::{self, Json};
use crate::proto;
use crate::proto::ProtoError;
use crate::service::Service;
use crate::wire::{self, FrameRead, Framing, WireLimits};
use isegen_ir::{text, LatencyModel};
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Applications whose canonical IR the router remembers for `not_found`
/// healing. Bounded so a hostile client cannot grow it without limit.
const IR_CACHE_CAP: usize = 1024;

/// Fleet topology and every reliability knob.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of `ised` shards to spawn and supervise.
    pub shards: usize,
    /// Path to the `ised` binary.
    pub ised_bin: PathBuf,
    /// Directory for per-shard disk caches and stderr logs.
    pub state_dir: PathBuf,
    /// LRU capacity per shard (and for the in-process fallback).
    pub cache_capacity: usize,
    /// Log routing decisions to stderr.
    pub verbose: bool,
    /// How long a spawned shard may take to print its banner.
    pub spawn_deadline: Duration,
    /// TCP connect timeout per forwarded attempt.
    pub connect_timeout: Duration,
    /// Response deadline per forwarded attempt (selection can be slow).
    pub request_timeout: Duration,
    /// Cadence of the health loop.
    pub health_interval: Duration,
    /// Response deadline for a health `ping`.
    pub health_deadline: Duration,
    /// How long a drained shard gets to exit before being killed.
    pub drain_deadline: Duration,
    /// Attempts per shard before failing over (≥ 1).
    pub max_attempts: u32,
    /// First retry backoff; doubles per retry.
    pub backoff_base: Duration,
    /// Backoff ceiling (also caps restart backoff in the health loop).
    pub backoff_cap: Duration,
    /// Consecutive transport failures that open a shard's breaker.
    pub breaker_threshold: u32,
    /// How long an opened breaker routes around the shard.
    pub breaker_open_for: Duration,
    /// Client-side idle timeout (as in [`crate::ServerConfig`]).
    pub idle_timeout: Option<Duration>,
    /// Client-side per-request read deadline (as in [`crate::ServerConfig`]).
    pub read_deadline: Option<Duration>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 3,
            ised_bin: PathBuf::from("ised"),
            state_dir: PathBuf::from("ised-fleet"),
            cache_capacity: 64,
            verbose: true,
            spawn_deadline: Duration::from_secs(10),
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(120),
            health_interval: Duration::from_millis(250),
            health_deadline: Duration::from_secs(2),
            drain_deadline: Duration::from_secs(5),
            max_attempts: 2,
            backoff_base: Duration::from_millis(50),
            backoff_cap: Duration::from_secs(2),
            breaker_threshold: 3,
            breaker_open_for: Duration::from_secs(1),
            idle_timeout: None,
            read_deadline: None,
        }
    }
}

/// The sharded routing core; see the module docs.
pub struct Fleet {
    config: FleetConfig,
    ring: Ring,
    backends: Vec<Backend>,
    /// Degraded-mode engine: identical to what the shards run.
    fallback: Service,
    /// Canonical IR by hash, for routing `app`-hash requests and for
    /// healing `not_found` on failover shards.
    ir_cache: Mutex<HashMap<u64, String>>,
    stop: AtomicBool,
    routed: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    fallbacks: AtomicU64,
    healed: AtomicU64,
    drains: AtomicU64,
}

impl Fleet {
    /// Creates the state directory, spawns every shard and returns the
    /// fleet. A shard that fails to spawn is logged and left to the
    /// health loop's backoff — the fleet starts anyway and degrades to
    /// the fallback engine if every shard is down.
    pub fn start(config: FleetConfig) -> io::Result<Fleet> {
        std::fs::create_dir_all(&config.state_dir)?;
        let ring = Ring::new(config.shards.max(1));
        let backends = (0..ring.shards())
            .map(|i| {
                Backend::new(
                    i,
                    BackendConfig {
                        ised_bin: config.ised_bin.clone(),
                        disk_path: config.state_dir.join(format!("shard-{i}.cachelog")),
                        log_path: config.state_dir.join(format!("shard-{i}.log")),
                        cache_capacity: config.cache_capacity,
                        spawn_deadline: config.spawn_deadline,
                        connect_timeout: config.connect_timeout,
                        request_timeout: config.request_timeout,
                    },
                    config.breaker_threshold,
                    config.breaker_open_for,
                )
            })
            .collect();
        let fallback = Service::new(
            ServeCache::new(config.cache_capacity, LatencyModel::paper_default()),
            "router-fallback",
            false,
        );
        let fleet = Fleet {
            ring,
            backends,
            fallback,
            ir_cache: Mutex::new(HashMap::new()),
            stop: AtomicBool::new(false),
            routed: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            healed: AtomicU64::new(0),
            drains: AtomicU64::new(0),
            config,
        };
        for backend in &fleet.backends {
            match backend.spawn() {
                Ok(()) => fleet.log(format!(
                    "shard {} up at {} (pid {})",
                    backend.index,
                    backend.addr().map(|a| a.to_string()).unwrap_or_default(),
                    backend.pid().unwrap_or(0),
                )),
                Err(e) => {
                    fleet.log(format!(
                        "shard {} failed to spawn ({e}); health loop will retry",
                        backend.index
                    ));
                    backend.breaker.trip();
                }
            }
        }
        Ok(fleet)
    }

    fn log(&self, message: impl AsRef<str>) {
        if self.config.verbose {
            eprintln!("[isegen-router] {}", message.as_ref());
        }
    }

    /// The fleet configuration (read-only).
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The supervised shards.
    pub fn backends(&self) -> &[Backend] {
        &self.backends
    }

    /// Raises the stop flag observed by in-flight forwards and the
    /// health loop.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Best-effort graceful teardown: ask every live shard to shut
    /// down, then kill whatever lingers. Disk logs are fsync'd on every
    /// append, so nothing is lost either way.
    pub fn shutdown_backends(&self) {
        let not_stopping = AtomicBool::new(false);
        for backend in &self.backends {
            if !backend.child_dead() {
                let _ = backend.request_with_deadline(
                    br#"{"op":"shutdown"}"#,
                    &not_stopping,
                    Duration::from_millis(500),
                );
            }
            if !backend.wait_exit(Duration::from_millis(500)) {
                backend.kill();
            }
        }
    }

    fn ir_cache(&self) -> MutexGuard<'_, HashMap<u64, String>> {
        self.ir_cache.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The consistent-hash key of a request: the canonical-IR FNV hash,
    /// from the `app` field or by canonicalizing inline `ir`. `None`
    /// means the request cannot be placed (unparseable IR, absent
    /// fields) and is answered by the fallback engine.
    fn routing_key(&self, request: &Json) -> Option<u64> {
        if let Some(hash) = request.get("app").and_then(Json::as_str) {
            return proto::parse_hash(hash).ok();
        }
        let ir = request.get("ir").and_then(Json::as_str)?;
        let app = text::parse_application(ir).ok()?;
        let canonical = text::write_application(&app);
        let hash = fnv1a(canonical.as_bytes());
        let mut known = self.ir_cache();
        if known.len() >= IR_CACHE_CAP && !known.contains_key(&hash) {
            // Crude but bounded: reset rather than grow without limit.
            known.clear();
        }
        known.entry(hash).or_insert(canonical);
        Some(hash)
    }

    fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32 << attempt.saturating_sub(1).min(10);
        self.config
            .backoff_base
            .saturating_mul(factor)
            .min(self.config.backoff_cap)
    }

    /// Answers one raw request document. The returned bytes are exactly
    /// what a shard (or the fallback engine) produced.
    pub fn handle(&self, raw: &[u8]) -> Vec<u8> {
        let text = String::from_utf8_lossy(raw);
        let request = match json::parse(text.trim()) {
            Ok(request) => request,
            Err(e) => {
                return ProtoError::new("parse", e.to_string())
                    .to_response()
                    .to_string()
                    .into_bytes()
            }
        };
        match request.get("op").and_then(Json::as_str) {
            // Answered locally: a router that is up is ping-able even
            // with the whole fleet down.
            Some("ping") => Json::obj([("ok", Json::Bool(true)), ("op", "pong".into())])
                .to_string()
                .into_bytes(),
            Some("stats") => self.aggregate_stats().to_string().into_bytes(),
            _ => match self.routing_key(&request) {
                Some(key) => self.route(key, raw, &request),
                None => self.local_response(raw),
            },
        }
    }

    /// Routes `raw` by `key`: same-shard retries with backoff, then
    /// failover along the ring, then the in-process fallback.
    fn route(&self, key: u64, raw: &[u8], request: &Json) -> Vec<u8> {
        let order = self.ring.preference(key);
        for (hop, &shard) in order.iter().enumerate() {
            let backend = &self.backends[shard];
            if !backend.breaker.allow() {
                continue;
            }
            if hop > 0 {
                self.failovers.fetch_add(1, Ordering::Relaxed);
                self.log(format!("key {key:016x}: failing over to shard {shard}"));
            }
            for attempt in 0..self.config.max_attempts.max(1) {
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                if attempt > 0 {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(self.backoff(attempt));
                }
                match backend.request(raw, &self.stop) {
                    Ok(bytes) => {
                        backend.breaker.on_success();
                        self.routed.fetch_add(1, Ordering::Relaxed);
                        if let Some(healed) = self.heal_not_found(backend, &bytes, raw, request) {
                            return healed;
                        }
                        return bytes;
                    }
                    Err(e) => {
                        backend.breaker.on_failure();
                        self.log(format!("shard {shard} attempt {}: {e}", attempt + 1));
                    }
                }
            }
        }
        // Every shard unavailable: degrade to the in-process engine.
        self.fallbacks.fetch_add(1, Ordering::Relaxed);
        self.log(format!("key {key:016x}: all shards down, serving locally"));
        self.local_response(raw)
    }

    /// A failover shard answering `not_found` for an `app` hash the
    /// router knows the IR of is healed in place: submit the canonical
    /// IR, then replay the original request once.
    fn heal_not_found(
        &self,
        backend: &Backend,
        response: &[u8],
        raw: &[u8],
        request: &Json,
    ) -> Option<Vec<u8>> {
        let parsed = json::parse(std::str::from_utf8(response).ok()?.trim()).ok()?;
        if parsed.get("kind").and_then(Json::as_str) != Some("not_found") {
            return None;
        }
        let hash = proto::parse_hash(request.get("app")?.as_str()?).ok()?;
        let canonical = self.ir_cache().get(&hash).cloned()?;
        let submit = Json::obj([("op", "submit".into()), ("ir", canonical.into())]);
        let submitted = backend
            .request(submit.to_string().as_bytes(), &self.stop)
            .ok()?;
        let submitted = json::parse(std::str::from_utf8(&submitted).ok()?.trim()).ok()?;
        if !matches!(submitted.get("ok"), Some(Json::Bool(true))) {
            return None;
        }
        let retried = backend.request(raw, &self.stop).ok()?;
        self.healed.fetch_add(1, Ordering::Relaxed);
        self.log(format!(
            "healed not_found for app {} on shard {}",
            proto::format_hash(hash),
            backend.index
        ));
        Some(retried)
    }

    /// Serves a request from the in-process engine (degraded mode, and
    /// the home of requests that cannot be placed on the ring).
    fn local_response(&self, raw: &[u8]) -> Vec<u8> {
        let response = catch_unwind(AssertUnwindSafe(|| self.fallback.handle_bytes(raw)))
            .unwrap_or_else(|_| {
                Err(ProtoError::new(
                    "internal",
                    "fallback handler panicked; see router log",
                ))
            })
            .unwrap_or_else(|e| e.to_response());
        response.to_string().into_bytes()
    }

    /// The router's `stats` document: fleet counters, per-shard health
    /// and (best-effort) each live shard's own stats, plus the fallback
    /// engine's.
    pub fn aggregate_stats(&self) -> Json {
        let shards: Vec<Json> = self
            .backends
            .iter()
            .map(|b| {
                let mut doc = Json::obj([
                    ("shard", b.index.into()),
                    ("alive", Json::Bool(!b.child_dead())),
                    (
                        "pid",
                        b.pid().map(|p| Json::from(p as u64)).unwrap_or(Json::Null),
                    ),
                    ("breaker", b.breaker.state_name().into()),
                    ("restarts", b.restarts.load(Ordering::Relaxed).into()),
                    ("forwarded", b.forwarded.load(Ordering::Relaxed).into()),
                    (
                        "transport_failures",
                        b.failures.load(Ordering::Relaxed).into(),
                    ),
                ]);
                let probe = b.request_with_deadline(
                    br#"{"op":"stats"}"#,
                    &self.stop,
                    self.config.health_deadline,
                );
                if let Ok(bytes) = probe {
                    if let Ok(stats) = json::parse(String::from_utf8_lossy(&bytes).trim()) {
                        if let Json::Obj(members) = &mut doc {
                            members.push(("stats".to_string(), stats));
                        }
                    }
                }
                doc
            })
            .collect();
        Json::obj([
            ("ok", Json::Bool(true)),
            ("op", "stats".into()),
            (
                "router",
                Json::obj([
                    ("shards", self.backends.len().into()),
                    ("routed", self.routed.load(Ordering::Relaxed).into()),
                    ("retries", self.retries.load(Ordering::Relaxed).into()),
                    ("failovers", self.failovers.load(Ordering::Relaxed).into()),
                    ("fallbacks", self.fallbacks.load(Ordering::Relaxed).into()),
                    ("healed", self.healed.load(Ordering::Relaxed).into()),
                    ("drains", self.drains.load(Ordering::Relaxed).into()),
                ]),
            ),
            ("shards", Json::Arr(shards)),
            ("fallback", self.fallback.stats_json()),
        ])
    }

    /// Drains shard `shard`: stop routing to it, ask it to flush and
    /// exit, wait (kill if overdue), respawn it warm from its disk log.
    pub fn drain_shard(&self, shard: usize) -> Json {
        let Some(backend) = self.backends.get(shard) else {
            return ProtoError::new(
                "protocol",
                format!("no shard {shard} (fleet has {})", self.backends.len()),
            )
            .to_response();
        };
        self.drains.fetch_add(1, Ordering::Relaxed);
        backend.hold.store(true, Ordering::SeqCst);
        backend.breaker.trip();
        let old_pid = backend.pid();
        let mut acked = false;
        if !backend.child_dead() {
            if let Ok(bytes) = backend.request_with_deadline(
                br#"{"op":"drain"}"#,
                &self.stop,
                self.config.drain_deadline,
            ) {
                acked = json::parse(String::from_utf8_lossy(&bytes).trim())
                    .ok()
                    .is_some_and(|r| matches!(r.get("ok"), Some(Json::Bool(true))));
            }
            if !backend.wait_exit(self.config.drain_deadline) {
                self.log(format!("shard {shard} ignored drain; killing"));
                backend.kill();
            }
        }
        let result = match backend.spawn() {
            Ok(()) => {
                self.log(format!(
                    "shard {shard} drained and respawned (pid {} → {})",
                    old_pid.unwrap_or(0),
                    backend.pid().unwrap_or(0)
                ));
                Json::obj([
                    ("ok", Json::Bool(true)),
                    ("op", "drain".into()),
                    ("shard", shard.into()),
                    ("acked", Json::Bool(acked)),
                    (
                        "old_pid",
                        old_pid.map(|p| Json::from(p as u64)).unwrap_or(Json::Null),
                    ),
                    (
                        "new_pid",
                        backend
                            .pid()
                            .map(|p| Json::from(p as u64))
                            .unwrap_or(Json::Null),
                    ),
                ])
            }
            Err(e) => {
                backend.breaker.trip();
                ProtoError::new(
                    "internal",
                    format!("shard {shard} drained but failed to respawn: {e}"),
                )
                .to_response()
            }
        };
        backend.hold.store(false, Ordering::SeqCst);
        result
    }

    /// The supervision loop: restart dead shards (bounded exponential
    /// backoff), ping live ones with a deadline, and kill a live but
    /// unresponsive shard whose breaker has opened so it can come back
    /// warm. Runs until [`Self::request_stop`].
    pub fn run_health_loop(&self) {
        let n = self.backends.len();
        let mut next_attempt = vec![Instant::now(); n];
        let mut spawn_failures = vec![0u32; n];
        while !self.stop.load(Ordering::SeqCst) {
            for (i, backend) in self.backends.iter().enumerate() {
                if self.stop.load(Ordering::SeqCst) {
                    return;
                }
                if backend.hold.load(Ordering::SeqCst) {
                    continue;
                }
                if backend.child_dead() {
                    if Instant::now() < next_attempt[i] {
                        continue;
                    }
                    match backend.spawn() {
                        Ok(()) => {
                            spawn_failures[i] = 0;
                            self.log(format!(
                                "shard {i} restarted (pid {})",
                                backend.pid().unwrap_or(0)
                            ));
                        }
                        Err(e) => {
                            spawn_failures[i] = spawn_failures[i].saturating_add(1);
                            let delay = self
                                .config
                                .backoff_base
                                .saturating_mul(1 << spawn_failures[i].min(10))
                                .min(self.config.backoff_cap);
                            next_attempt[i] = Instant::now() + delay;
                            backend.breaker.trip();
                            self.log(format!(
                                "shard {i} respawn failed ({e}); next attempt in {delay:?}"
                            ));
                        }
                    }
                    continue;
                }
                // Alive: probe with the health deadline. The probe's
                // breaker bookkeeping mirrors routed traffic so a
                // wedged-but-alive shard eventually opens its breaker…
                match backend.request_with_deadline(
                    br#"{"op":"ping"}"#,
                    &self.stop,
                    self.config.health_deadline,
                ) {
                    Ok(_) => backend.breaker.on_success(),
                    Err(e) => {
                        backend.breaker.on_failure();
                        self.log(format!("shard {i} health probe failed: {e}"));
                        // …at which point it is killed and the next
                        // tick respawns it warm from its disk log.
                        if backend.breaker.state_name() == "open" {
                            self.log(format!("shard {i} unresponsive; killing for respawn"));
                            backend.kill();
                        }
                    }
                }
            }
            let tick = Instant::now();
            while tick.elapsed() < self.config.health_interval && !self.stop.load(Ordering::SeqCst)
            {
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("shards", &self.backends.len())
            .field("state_dir", &self.config.state_dir)
            .finish()
    }
}

/// The TCP front of the fleet. Accepts the same wire protocol as
/// [`crate::Server`] (both framings, idle/read deadlines, prompt
/// shutdown) and answers every request through the [`Fleet`].
pub struct Router {
    listener: TcpListener,
    local_addr: SocketAddr,
    fleet: Fleet,
    stop: AtomicBool,
    connections: AtomicU64,
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

impl Router {
    /// Binds the front (port 0 for ephemeral) over a started fleet.
    pub fn bind(addr: impl ToSocketAddrs, fleet: Fleet) -> io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Router {
            listener,
            local_addr,
            fleet,
            stop: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The routing core.
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// Stops the accept loop, the health loop, in-flight forwards and
    /// every client connection (read half-close, as in the server).
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.fleet.request_stop();
        if let Ok(conns) = self.conns.lock() {
            for stream in conns.values() {
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
    }

    fn log(&self, message: impl AsRef<str>) {
        if self.fleet.config.verbose {
            eprintln!("[isegen-router] {}", message.as_ref());
        }
    }

    /// Runs the health loop and the accept loop until shutdown, then
    /// tears the shards down.
    pub fn run(&self) -> io::Result<()> {
        self.log(format!(
            "listening on {} ({} shards)",
            self.local_addr,
            self.fleet.backends.len()
        ));
        std::thread::scope(|scope| {
            scope.spawn(|| self.fleet.run_health_loop());
            loop {
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, peer)) => {
                        self.connections.fetch_add(1, Ordering::Relaxed);
                        let conn_id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
                        if let (Ok(clone), Ok(mut conns)) = (stream.try_clone(), self.conns.lock())
                        {
                            conns.insert(conn_id, clone);
                        }
                        scope.spawn(move || {
                            if let Err(e) = self.handle_connection(stream) {
                                self.log(format!("connection {peer} closed: {e}"));
                            }
                            if let Ok(mut conns) = self.conns.lock() {
                                conns.remove(&conn_id);
                            }
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => {
                        self.log(format!("accept error (retrying): {e}"));
                        std::thread::sleep(Duration::from_millis(100));
                    }
                }
            }
        });
        self.fleet.shutdown_backends();
        self.log("shutdown complete");
        Ok(())
    }

    fn handle_connection(&self, stream: TcpStream) -> io::Result<()> {
        stream.set_read_timeout(Some(wire::POLL_INTERVAL))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let limits = WireLimits {
            idle: self.fleet.config.idle_timeout,
            deadline: self.fleet.config.read_deadline,
            ..WireLimits::default()
        };
        let mut bytes = Vec::new();
        loop {
            let framing = match wire::read_frame(&mut reader, &mut bytes, &limits, &self.stop)? {
                FrameRead::Frame(framing) => framing,
                FrameRead::Eof | FrameRead::Stopped | FrameRead::IdleTimeout => return Ok(()),
                FrameRead::TooLong(framing) => {
                    let cap = match framing {
                        Framing::Line => limits.max_line,
                        Framing::Prefixed => limits.max_frame,
                    };
                    let err = ProtoError::new("protocol", format!("request exceeds {cap} bytes"));
                    self.respond(
                        &mut writer,
                        err.to_response().to_string().as_bytes(),
                        framing,
                    )?;
                    match framing {
                        Framing::Line => continue,
                        Framing::Prefixed => return Ok(()),
                    }
                }
                FrameRead::DeadlineExceeded => {
                    let err = ProtoError::new(
                        "timeout",
                        "request did not complete within the read deadline",
                    );
                    let _ = self.respond(
                        &mut writer,
                        err.to_response().to_string().as_bytes(),
                        Framing::Line,
                    );
                    return Ok(());
                }
                FrameRead::Malformed(why) => {
                    let err = ProtoError::new("protocol", why);
                    let _ = self.respond(
                        &mut writer,
                        err.to_response().to_string().as_bytes(),
                        Framing::Line,
                    );
                    return Ok(());
                }
            };
            let text = String::from_utf8_lossy(&bytes);
            let trimmed = text.trim();
            if trimmed.is_empty() {
                continue;
            }
            // Transport ops are the router's own; everything else is
            // the fleet's. `stats` is intercepted to tack on the
            // connection count only this layer knows.
            if let Ok(request) = json::parse(trimmed) {
                match request.get("op").and_then(Json::as_str) {
                    Some("shutdown") => {
                        let ack = Json::obj([("ok", Json::Bool(true)), ("op", "shutdown".into())]);
                        self.respond(&mut writer, ack.to_string().as_bytes(), framing)?;
                        self.request_stop();
                        return Ok(());
                    }
                    Some("drain") => {
                        let response = match request.get("shard").and_then(Json::as_u64) {
                            Some(shard) => self.fleet.drain_shard(shard as usize),
                            None => {
                                ProtoError::new("protocol", "drain needs a numeric \"shard\" index")
                                    .to_response()
                            }
                        };
                        self.respond(&mut writer, response.to_string().as_bytes(), framing)?;
                        continue;
                    }
                    Some("stats") => {
                        let mut response = self.fleet.aggregate_stats();
                        if let Json::Obj(members) = &mut response {
                            members.push((
                                "connections".to_string(),
                                self.connections.load(Ordering::Relaxed).into(),
                            ));
                        }
                        self.respond(&mut writer, response.to_string().as_bytes(), framing)?;
                        continue;
                    }
                    _ => {}
                }
            }
            let body = bytes.clone();
            let response = catch_unwind(AssertUnwindSafe(|| self.fleet.handle(&body)))
                .unwrap_or_else(|_| {
                    ProtoError::new("internal", "router handler panicked; see router log")
                        .to_response()
                        .to_string()
                        .into_bytes()
                });
            self.respond(&mut writer, &response, framing)?;
        }
    }

    fn respond(&self, writer: &mut TcpStream, response: &[u8], framing: Framing) -> io::Result<()> {
        wire::write_frame(writer, response, framing)
    }
}
