//! The `isegen-router` fleet: a fault-tolerant sharded front over N
//! supervised `ised` backends.
//!
//! The router consistent-hashes each request's canonical-IR FNV key
//! across the shards of a [`ring::Ring`], so every application lands on
//! a stable backend whose caches (in-memory and disk) stay hot for it.
//! Around that core sit the reliability layers:
//!
//! * **Supervision** ([`backend::Backend`]): each shard is a spawned
//!   `ised` child with its own append-only disk cache and stderr log. A
//!   health loop pings every shard, restarts dead ones with bounded
//!   exponential backoff, and a kill -9'd shard comes back *warm*
//!   because its disk log is replayed on boot.
//! * **Retries and failover** ([`router::Fleet`]): transport failures
//!   retry on the same shard with backoff, then fail over along the
//!   ring's preference order; if a failover shard has never seen the
//!   application, the router heals the `not_found` by re-submitting the
//!   canonical IR it remembers.
//! * **Circuit breaking** ([`breaker::Breaker`]): a flapping backend is
//!   routed around until a cool-down passes; a half-open probe decides
//!   whether it rejoins.
//! * **Graceful degradation**: when every shard is unreachable the
//!   router answers from an in-process [`crate::Service`] — same engine,
//!   same bytes, no fleet required.
//! * **Drain** (`{"op":"drain","shard":k}`): stop routing to a shard,
//!   ask it to flush its disk log and exit, then respawn it warm.

pub mod backend;
pub mod breaker;
pub mod ring;
pub mod router;

pub use backend::{Backend, BackendConfig, BackendError};
pub use breaker::Breaker;
pub use ring::Ring;
pub use router::{Fleet, FleetConfig, Router};
