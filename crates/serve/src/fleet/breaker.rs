//! A per-shard circuit breaker: after a run of transport failures the
//! shard is taken out of the routing preference for a cool-down, then a
//! single half-open probe decides whether it rejoins.
//!
//! States follow the classic pattern:
//!
//! * **Closed** — routing normally, counting consecutive failures.
//! * **Open** — all traffic routed around the shard until `open_for`
//!   elapses.
//! * **Half-open** — cool-down over; the next request is the probe. A
//!   success closes the breaker, a failure re-opens it.
//!
//! The breaker can also be [`Breaker::trip`]ped administratively (a
//! drain in progress, a child that failed to spawn): that holds it open
//! until an explicit [`Breaker::reset`].

use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
enum State {
    Closed { failures: u32 },
    Open { until: Option<Instant> },
    HalfOpen,
}

/// See the module docs.
#[derive(Debug)]
pub struct Breaker {
    threshold: u32,
    open_for: Duration,
    state: Mutex<State>,
}

impl Breaker {
    /// Opens after `threshold` consecutive failures, for `open_for`.
    pub fn new(threshold: u32, open_for: Duration) -> Breaker {
        Breaker {
            threshold: threshold.max(1),
            open_for,
            state: Mutex::new(State::Closed { failures: 0 }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// May this shard receive a request right now? An expired open
    /// breaker transitions to half-open and admits one probe.
    pub fn allow(&self) -> bool {
        let mut state = self.lock();
        match *state {
            State::Closed { .. } | State::HalfOpen => true,
            State::Open { until: None } => false,
            State::Open { until: Some(t) } => {
                if Instant::now() >= t {
                    *state = State::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// A request (or health probe) succeeded: close the breaker.
    pub fn on_success(&self) {
        *self.lock() = State::Closed { failures: 0 };
    }

    /// A transport failure. Enough of them in a row — or one while
    /// half-open — opens the breaker.
    pub fn on_failure(&self) {
        let mut state = self.lock();
        *state = match *state {
            State::Closed { failures } if failures + 1 < self.threshold => State::Closed {
                failures: failures + 1,
            },
            // An administrative hold stays a hold.
            State::Open { until: None } => State::Open { until: None },
            _ => State::Open {
                until: Some(Instant::now() + self.open_for),
            },
        };
    }

    /// Holds the breaker open until [`Self::reset`] — used while a
    /// shard is draining or failed to spawn.
    pub fn trip(&self) {
        *self.lock() = State::Open { until: None };
    }

    /// Force-closes the breaker (a shard came back up).
    pub fn reset(&self) {
        *self.lock() = State::Closed { failures: 0 };
    }

    /// `"closed"`, `"open"` or `"half-open"`, for stats.
    pub fn state_name(&self) -> &'static str {
        match *self.lock() {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen => "half-open",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = Breaker::new(3, Duration::from_secs(60));
        b.on_failure();
        b.on_failure();
        assert!(b.allow(), "below threshold stays closed");
        b.on_failure();
        assert!(!b.allow(), "third consecutive failure opens");
        assert_eq!(b.state_name(), "open");
    }

    #[test]
    fn success_resets_the_failure_run() {
        let b = Breaker::new(2, Duration::from_secs(60));
        b.on_failure();
        b.on_success();
        b.on_failure();
        assert!(b.allow(), "run was broken by the success");
    }

    #[test]
    fn half_open_probe_closes_or_reopens() {
        let b = Breaker::new(1, Duration::from_millis(1));
        b.on_failure();
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.allow(), "cool-down over: admit the probe");
        assert_eq!(b.state_name(), "half-open");
        b.on_failure();
        assert!(!b.allow(), "failed probe re-opens");
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.allow());
        b.on_success();
        assert_eq!(b.state_name(), "closed");
    }

    #[test]
    fn trip_holds_until_reset() {
        let b = Breaker::new(3, Duration::from_millis(1));
        b.trip();
        std::thread::sleep(Duration::from_millis(5));
        assert!(!b.allow(), "administrative hold has no cool-down");
        b.on_failure();
        assert!(!b.allow(), "failures do not demote the hold to timed-open");
        b.reset();
        assert!(b.allow());
    }
}
