//! Wire framing for the `ised` protocol: the legacy newline-delimited
//! encoding plus length-prefixed frames for payloads that should not be
//! one giant line, with idle/progress deadlines against hostile peers.
//!
//! # Framings
//!
//! * **Line** (legacy, still accepted everywhere): one JSON document,
//!   one `\n`-terminated line, capped at [`MAX_LINE_BYTES`].
//! * **Prefixed**: a header line `#<decimal byte count>\n`, then exactly
//!   that many payload bytes (newlines allowed inside), then one `\n`
//!   terminator. Capped at [`MAX_FRAME_BYTES`]. A response is framed the
//!   same way the request was, so old clients never see a `#` header.
//!
//! The first byte disambiguates: JSON never starts with `#`.
//!
//! # Deadlines
//!
//! [`read_frame`] enforces two optional limits while reading:
//!
//! * **idle** — maximum wait for the *first* byte of the next frame; an
//!   idle connection past it is closed.
//! * **progress deadline** — once the first byte arrived, the complete
//!   frame must arrive within this; a slowloris peer dribbling one byte
//!   at a time cannot pin a worker thread.
//!
//! Both rely on the underlying stream having a short read timeout so
//! the loop regains control periodically (see [`POLL_INTERVAL`]).

use std::io::{self, BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Cap on one legacy request/response line (bytes).
pub const MAX_LINE_BYTES: usize = 16 << 20;

/// Cap on one length-prefixed frame payload (bytes).
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Longest accepted `#<digits>` frame header (enough for any length up
/// to [`MAX_FRAME_BYTES`] with a wide margin).
const MAX_HEADER_BYTES: usize = 20;

/// Socket read timeout that keeps deadline checks responsive without
/// busy-waiting. Connection handlers should configure their stream with
/// this.
pub const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// How a frame was (or should be) encoded on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Framing {
    /// One `\n`-terminated line.
    Line,
    /// `#<len>\n` + payload + `\n`.
    Prefixed,
}

/// Read-side limits; see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct WireLimits {
    /// Cap on a legacy line.
    pub max_line: usize,
    /// Cap on a prefixed frame payload.
    pub max_frame: usize,
    /// Maximum wait for the first byte of a frame.
    pub idle: Option<Duration>,
    /// Maximum first-byte-to-complete-frame duration.
    pub deadline: Option<Duration>,
}

impl Default for WireLimits {
    fn default() -> Self {
        WireLimits {
            max_line: MAX_LINE_BYTES,
            max_frame: MAX_FRAME_BYTES,
            idle: None,
            deadline: None,
        }
    }
}

/// The outcome of [`read_frame`].
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete frame; the payload is in the caller's buffer.
    Frame(Framing),
    /// Clean end of stream between frames.
    Eof,
    /// The peer sent a frame larger than the cap. For `Line`, the rest
    /// of the line was drained and the connection can keep being
    /// served; for `Prefixed` the stream is desynchronized and should
    /// be closed after an error response.
    TooLong(Framing),
    /// The stop flag was raised mid-read.
    Stopped,
    /// No frame started within the idle limit.
    IdleTimeout,
    /// A started frame did not complete within the deadline.
    DeadlineExceeded,
    /// The bytes on the wire are not a valid frame (bad header or
    /// missing terminator); close the connection.
    Malformed(&'static str),
}

enum Mode {
    /// Waiting for the first byte of the frame.
    Unknown,
    /// Legacy line; `true` once over the cap (draining).
    Line(bool),
    /// Accumulating the `#...` header line.
    Header(Vec<u8>),
    /// Reading `remaining` payload bytes of a prefixed frame.
    Body(usize),
    /// Expecting the final `\n` of a prefixed frame.
    Terminator,
}

/// Reads one frame into `buf` (cleared first), honouring `limits` and
/// `stop`. The stream behind `reader` should have a read timeout of
/// [`POLL_INTERVAL`]; timeouts are where idle/deadline/stop checks run.
pub fn read_frame<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    limits: &WireLimits,
    stop: &AtomicBool,
) -> io::Result<FrameRead> {
    buf.clear();
    let idle_from = Instant::now();
    let mut started_at: Option<Instant> = None;
    let mut mode = Mode::Unknown;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(FrameRead::Stopped);
                }
                match started_at {
                    None => {
                        if limits.idle.is_some_and(|lim| idle_from.elapsed() > lim) {
                            return Ok(FrameRead::IdleTimeout);
                        }
                    }
                    Some(t0) => {
                        if limits.deadline.is_some_and(|lim| t0.elapsed() > lim) {
                            return Ok(FrameRead::DeadlineExceeded);
                        }
                    }
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            // EOF. A partial legacy line still parses (historic
            // behaviour); a partial prefixed frame is just a dead peer.
            return Ok(match mode {
                Mode::Unknown => FrameRead::Eof,
                Mode::Line(true) => FrameRead::TooLong(Framing::Line),
                Mode::Line(false) if !buf.is_empty() => FrameRead::Frame(Framing::Line),
                _ => FrameRead::Eof,
            });
        }
        if started_at.is_none() {
            started_at = Some(Instant::now());
            mode = if chunk.first() == Some(&b'#') {
                Mode::Header(Vec::with_capacity(MAX_HEADER_BYTES))
            } else {
                Mode::Line(false)
            };
        }
        match &mut mode {
            Mode::Unknown => unreachable!("mode fixed at first byte"),
            Mode::Line(overflow) => {
                let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
                    Some(i) => (i + 1, true),
                    None => (chunk.len(), false),
                };
                if !*overflow {
                    buf.extend_from_slice(&chunk[..take]);
                    if buf.len() > limits.max_line {
                        *overflow = true;
                        buf.clear();
                    }
                }
                let overflowed = *overflow;
                reader.consume(take);
                if done {
                    // Drop the terminator (and a possible '\r' before it).
                    while matches!(buf.last(), Some(b'\n' | b'\r')) {
                        buf.pop();
                    }
                    return Ok(if overflowed {
                        FrameRead::TooLong(Framing::Line)
                    } else {
                        FrameRead::Frame(Framing::Line)
                    });
                }
            }
            Mode::Header(header) => {
                let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
                    Some(i) => (i + 1, true),
                    None => (chunk.len(), false),
                };
                if header.len() + take > MAX_HEADER_BYTES + 1 {
                    return Ok(FrameRead::Malformed("frame header too long"));
                }
                header.extend_from_slice(&chunk[..take]);
                reader.consume(take);
                if done {
                    let digits = &header[1..header.len() - 1];
                    let digits = match digits.last() {
                        Some(b'\r') => &digits[..digits.len() - 1],
                        _ => digits,
                    };
                    if digits.is_empty() || !digits.iter().all(u8::is_ascii_digit) {
                        return Ok(FrameRead::Malformed("frame header is not #<digits>"));
                    }
                    let len = match std::str::from_utf8(digits)
                        .ok()
                        .and_then(|s| s.parse::<usize>().ok())
                    {
                        Some(len) => len,
                        None => return Ok(FrameRead::Malformed("frame length out of range")),
                    };
                    if len > limits.max_frame {
                        return Ok(FrameRead::TooLong(Framing::Prefixed));
                    }
                    if len == 0 {
                        mode = Mode::Terminator;
                    } else {
                        buf.reserve(len.min(1 << 20));
                        mode = Mode::Body(len);
                    }
                }
            }
            Mode::Body(remaining) => {
                let take = chunk.len().min(*remaining);
                buf.extend_from_slice(&chunk[..take]);
                reader.consume(take);
                *remaining -= take;
                if *remaining == 0 {
                    mode = Mode::Terminator;
                }
            }
            Mode::Terminator => {
                let ok = chunk.first() == Some(&b'\n');
                reader.consume(1);
                return Ok(if ok {
                    FrameRead::Frame(Framing::Prefixed)
                } else {
                    FrameRead::Malformed("missing frame terminator")
                });
            }
        }
    }
}

/// Writes one frame in the requested framing and flushes. Large
/// prefixed payloads are written in bounded chunks so a response never
/// has to materialize as one giant contiguous write.
pub fn write_frame<W: Write>(writer: &mut W, body: &[u8], framing: Framing) -> io::Result<()> {
    match framing {
        Framing::Line => {
            debug_assert!(
                !body.contains(&b'\n'),
                "line framing cannot carry embedded newlines"
            );
            writer.write_all(body)?;
        }
        Framing::Prefixed => {
            let mut header = [0u8; MAX_HEADER_BYTES];
            let mut cursor = io::Cursor::new(&mut header[..]);
            writeln!(cursor, "#{}", body.len())?;
            let n = cursor.position() as usize;
            writer.write_all(&header[..n])?;
            for piece in body.chunks(64 << 10) {
                writer.write_all(piece)?;
            }
        }
    }
    writer.write_all(b"\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn read_all(input: &[u8], limits: &WireLimits) -> Vec<(FrameRead, Vec<u8>)> {
        let stop = AtomicBool::new(false);
        let mut reader = BufReader::new(input);
        let mut out = Vec::new();
        let mut buf = Vec::new();
        loop {
            let r = read_frame(&mut reader, &mut buf, limits, &stop).expect("io");
            let done = matches!(r, FrameRead::Eof | FrameRead::Malformed(_));
            out.push((r, buf.clone()));
            if done {
                return out;
            }
        }
    }

    #[test]
    fn line_and_prefixed_interleave() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"{\"op\":\"ping\"}", Framing::Line).unwrap();
        write_frame(&mut wire, b"{\"ir\":\"a\\nb\"}", Framing::Prefixed).unwrap();
        write_frame(&mut wire, b"{}", Framing::Line).unwrap();
        let frames = read_all(&wire, &WireLimits::default());
        assert_eq!(frames[0].0, FrameRead::Frame(Framing::Line));
        assert_eq!(frames[0].1, b"{\"op\":\"ping\"}");
        assert_eq!(frames[1].0, FrameRead::Frame(Framing::Prefixed));
        assert_eq!(frames[1].1, b"{\"ir\":\"a\\nb\"}");
        assert_eq!(frames[2].0, FrameRead::Frame(Framing::Line));
        assert_eq!(frames[3].0, FrameRead::Eof);
    }

    #[test]
    fn prefixed_payload_may_contain_newlines() {
        let body = b"line one\nline two\nline three";
        let mut wire = Vec::new();
        write_frame(&mut wire, body, Framing::Prefixed).unwrap();
        let frames = read_all(&wire, &WireLimits::default());
        assert_eq!(frames[0].0, FrameRead::Frame(Framing::Prefixed));
        assert_eq!(frames[0].1, body);
    }

    #[test]
    fn oversized_line_is_drained_and_reported() {
        let limits = WireLimits {
            max_line: 8,
            ..WireLimits::default()
        };
        let frames = read_all(b"0123456789abcdef\n{\"x\":1}\n", &limits);
        assert_eq!(frames[0].0, FrameRead::TooLong(Framing::Line));
        assert_eq!(frames[1].0, FrameRead::Frame(Framing::Line));
        assert_eq!(frames[1].1, b"{\"x\":1}");
    }

    #[test]
    fn oversized_frame_is_rejected_without_reading_body() {
        let limits = WireLimits {
            max_frame: 16,
            ..WireLimits::default()
        };
        let frames = read_all(b"#999999\nwhatever", &limits);
        assert_eq!(frames[0].0, FrameRead::TooLong(Framing::Prefixed));
    }

    #[test]
    fn malformed_headers_are_rejected() {
        for wire in [
            &b"#\n"[..],
            b"#12x\n{}",
            b"#-3\n{}",
            b"#184467440737095516150\n",
            b"#2\n{}X",
        ] {
            let last = read_all(wire, &WireLimits::default()).pop().unwrap().0;
            assert!(
                matches!(last, FrameRead::Malformed(_)),
                "{wire:?}: {last:?}"
            );
        }
    }

    #[test]
    fn empty_prefixed_frame_round_trips() {
        let frames = read_all(b"#0\n\n", &WireLimits::default());
        assert_eq!(frames[0].0, FrameRead::Frame(Framing::Prefixed));
        assert_eq!(frames[0].1, b"");
    }

    #[test]
    fn crlf_line_is_trimmed() {
        let frames = read_all(b"{\"op\":\"ping\"}\r\n", &WireLimits::default());
        assert_eq!(frames[0].0, FrameRead::Frame(Framing::Line));
        assert_eq!(frames[0].1, b"{\"op\":\"ping\"}");
    }

    #[test]
    fn stop_flag_interrupts_a_timed_out_read() {
        // A reader that always times out: the stop flag must win.
        struct AlwaysTimeout;
        impl io::Read for AlwaysTimeout {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "poll"))
            }
        }
        let stop = AtomicBool::new(true);
        let mut reader = BufReader::new(AlwaysTimeout);
        let mut buf = Vec::new();
        let r = read_frame(&mut reader, &mut buf, &WireLimits::default(), &stop).unwrap();
        assert_eq!(r, FrameRead::Stopped);
    }

    #[test]
    fn idle_and_deadline_fire_on_timeouts() {
        struct AlwaysTimeout;
        impl io::Read for AlwaysTimeout {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                std::thread::sleep(Duration::from_millis(5));
                Err(io::Error::new(io::ErrorKind::WouldBlock, "poll"))
            }
        }
        let stop = AtomicBool::new(false);
        let limits = WireLimits {
            idle: Some(Duration::from_millis(20)),
            ..WireLimits::default()
        };
        let mut reader = BufReader::new(AlwaysTimeout);
        let mut buf = Vec::new();
        let r = read_frame(&mut reader, &mut buf, &limits, &stop).unwrap();
        assert_eq!(r, FrameRead::IdleTimeout);

        // Deadline: half a frame arrives, then the peer stalls forever.
        struct Dribble(bool);
        impl io::Read for Dribble {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.0 {
                    std::thread::sleep(Duration::from_millis(5));
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "poll"));
                }
                self.0 = true;
                out[0] = b'{';
                Ok(1)
            }
        }
        let limits = WireLimits {
            deadline: Some(Duration::from_millis(20)),
            ..WireLimits::default()
        };
        let mut reader = BufReader::new(Dribble(false));
        let r = read_frame(&mut reader, &mut buf, &limits, &stop).unwrap();
        assert_eq!(r, FrameRead::DeadlineExceeded);
    }
}
