//! The long-lived `ised` server: accepts TCP connections, speaks the
//! newline-delimited JSON protocol of [`crate::proto`], and serves every
//! request from the shared [`ServeCache`].
//!
//! Concurrency is hand-rolled on scoped threads (no async runtime in the
//! image): the acceptor polls a non-blocking listener so it can observe
//! the shutdown flag, and each connection gets one scoped worker thread.
//! Worker panics are impossible by construction on the request path —
//! every library error is mapped to a structured error response — and a
//! `catch_unwind` backstop turns anything that slips through into an
//! `"internal"` error response instead of a dead connection.

use crate::cache::{AppEntry, SelectionKey, ServeCache, SubmitError};
use crate::json::{self, Json};
use crate::proto::{self, ProtoError, RequestConfig};
use isegen_core::{
    generate_batched_in_contexts, generate_in_contexts, CacheStats, IseSelection, IsegenFinder,
};
use isegen_ir::LatencyModel;
use isegen_rtl::{verify_selection, AfuLibrary, VerifyConfig};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Hard cap on one request line (bytes). The largest bundled workload
/// serializes to well under 1 MiB of text IR; 16 MiB leaves room for
/// far bigger programs while bounding per-connection memory.
pub const MAX_LINE_BYTES: usize = 16 << 20;

/// How the server is set up; see [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// LRU bound on cached applications.
    pub cache_capacity: usize,
    /// Log requests and connections to stderr.
    pub verbose: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cache_capacity: 64,
            verbose: true,
        }
    }
}

/// The `ised` daemon. Construct with [`Server::bind`], run with
/// [`Server::run`] (blocks until a `shutdown` request or
/// [`Server::request_stop`]).
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    cache: ServeCache,
    config: ServerConfig,
    stop: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    connections: AtomicU64,
    /// `verify` requests served and total stimulus vectors they drove
    /// through the three-way oracle (vectors × ISEs), for `stats`.
    verifications: AtomicU64,
    verified_vectors: AtomicU64,
    /// K-L probe/arena statistics absorbed from every computed (non-memo)
    /// selection, surfaced by the `stats` op.
    search_stats: Mutex<CacheStats>,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) with the
    /// paper-default latency model.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            local_addr,
            cache: ServeCache::new(config.cache_capacity, LatencyModel::paper_default()),
            config,
            stop: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            verifications: AtomicU64::new(0),
            verified_vectors: AtomicU64::new(0),
            search_stats: Mutex::new(CacheStats::default()),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared cache (exposed for in-process tests and stats).
    pub fn cache(&self) -> &ServeCache {
        &self.cache
    }

    /// Asks the accept loop to drain and return. Safe from any thread.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    fn log(&self, message: impl AsRef<str>) {
        if self.config.verbose {
            eprintln!("[ised] {}", message.as_ref());
        }
    }

    /// Accepts and serves connections until shutdown. Every connection
    /// runs on its own scoped thread; the call returns only after all
    /// of them finished.
    pub fn run(&self) -> io::Result<()> {
        self.log(format!(
            "listening on {} (cache capacity {})",
            self.local_addr, self.config.cache_capacity
        ));
        std::thread::scope(|scope| {
            loop {
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, peer)) => {
                        self.connections.fetch_add(1, Ordering::Relaxed);
                        self.log(format!("connection from {peer}"));
                        scope.spawn(move || {
                            if let Err(e) = self.handle_connection(stream) {
                                self.log(format!("connection {peer} closed: {e}"));
                            } else {
                                self.log(format!("connection {peer} closed"));
                            }
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => {
                        // Accept errors (ECONNABORTED, EMFILE under fd
                        // pressure, EINTR, …) are transient from the
                        // listener's point of view: log, back off and
                        // keep accepting. Bailing out here would leave
                        // the daemon alive but deaf — workers keep
                        // serving inside the scope while no new client
                        // can ever connect.
                        self.log(format!("accept error (retrying): {e}"));
                        std::thread::sleep(Duration::from_millis(100));
                    }
                }
            }
        });
        self.log("shutdown complete");
        Ok(())
    }

    fn handle_connection(&self, stream: TcpStream) -> io::Result<()> {
        // Short read timeouts let workers notice the shutdown flag; a
        // timed-out read just polls again (inside `read_line_capped`,
        // which keeps any partial line intact across timeouts).
        stream.set_read_timeout(Some(Duration::from_millis(200)))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let mut bytes = Vec::new();
        loop {
            bytes.clear();
            match read_line_capped(&mut reader, &mut bytes, MAX_LINE_BYTES, &self.stop)? {
                LineRead::Eof | LineRead::Stopped => return Ok(()),
                LineRead::Line => {}
                LineRead::TooLong => {
                    // The line was drained; answer and keep serving.
                    let err = ProtoError::new(
                        "protocol",
                        format!("request exceeds {MAX_LINE_BYTES} bytes"),
                    );
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    writeln!(writer, "{}", err.to_response())?;
                    writer.flush()?;
                    continue;
                }
            }
            // Invalid UTF-8 degrades into replacement characters and
            // then a structured JSON parse error — never a panic.
            let line = String::from_utf8_lossy(&bytes);
            if line.trim().is_empty() {
                continue;
            }
            self.requests.fetch_add(1, Ordering::Relaxed);
            // The backstop: a panic anywhere in dispatch becomes an
            // "internal" error response, not a dead worker thread.
            let response = catch_unwind(AssertUnwindSafe(|| self.dispatch(&line)))
                .unwrap_or_else(|_| {
                    Err(ProtoError::new(
                        "internal",
                        "request handler panicked; see server log",
                    ))
                })
                .unwrap_or_else(|e| {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                    self.log(format!("error response: {e}"));
                    e.to_response()
                });
            writeln!(writer, "{response}")?;
            writer.flush()?;
        }
    }

    /// Parses and executes one request line.
    fn dispatch(&self, line: &str) -> Result<Json, ProtoError> {
        let request =
            json::parse(line.trim()).map_err(|e| ProtoError::new("parse", e.to_string()))?;
        let op = request
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::new("protocol", "request needs a string \"op\""))?;
        match op {
            "ping" => Ok(Json::obj([("ok", Json::Bool(true)), ("op", "pong".into())])),
            "submit" => self.op_submit(&request),
            "select" => self.op_select(&request),
            "rtl" => self.op_rtl(&request),
            "verify" => self.op_verify(&request),
            "stats" => Ok(self.op_stats()),
            "shutdown" => {
                self.log("shutdown requested");
                self.request_stop();
                Ok(Json::obj([
                    ("ok", Json::Bool(true)),
                    ("op", "shutdown".into()),
                ]))
            }
            other => Err(ProtoError::new(
                "protocol",
                format!("unknown op {other:?} (ping/submit/select/rtl/verify/stats/shutdown)"),
            )),
        }
    }

    fn op_submit(&self, request: &Json) -> Result<Json, ProtoError> {
        let (hash, entry, fresh) = self.submit_ir(request)?;
        self.log(format!(
            "submit {} → {} ({})",
            entry.app.name(),
            proto::format_hash(hash),
            if fresh { "new" } else { "cached" }
        ));
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("op", "submit".into()),
            ("app", proto::format_hash(hash).into()),
            ("name", entry.app.name().into()),
            ("blocks", entry.app.blocks().len().into()),
            (
                "ops",
                entry
                    .app
                    .blocks()
                    .iter()
                    .map(|b| b.operation_count())
                    .sum::<usize>()
                    .into(),
            ),
            ("cached", Json::Bool(!fresh)),
        ]))
    }

    /// Resolves the application of a request: `app` (a hash from an
    /// earlier submit) or inline `ir`.
    fn resolve_app(&self, request: &Json) -> Result<(u64, Arc<AppEntry>), ProtoError> {
        if let Some(hash) = request.get("app") {
            let hash = hash
                .as_str()
                .ok_or_else(|| ProtoError::new("protocol", "\"app\" must be a hash string"))
                .and_then(proto::parse_hash)?;
            let entry = self.cache.get(hash).ok_or_else(|| {
                ProtoError::new(
                    "not_found",
                    format!(
                        "no app {} in cache (submit it first)",
                        proto::format_hash(hash)
                    ),
                )
            })?;
            return Ok((hash, entry));
        }
        let (hash, entry, _) = self.submit_ir(request)?;
        Ok((hash, entry))
    }

    fn submit_ir(&self, request: &Json) -> Result<(u64, Arc<AppEntry>, bool), ProtoError> {
        let ir = request.get("ir").and_then(Json::as_str).ok_or_else(|| {
            ProtoError::new("protocol", "request needs \"ir\" text or an \"app\" hash")
        })?;
        self.cache.submit(ir).map_err(|e| {
            let kind = match e {
                SubmitError::Ir(_) => "ir",
                SubmitError::HashCollision => "collision",
            };
            ProtoError::new(kind, e.to_string())
        })
    }

    /// Computes (or recalls) the selection for `entry` under `config`.
    fn selection(&self, entry: &AppEntry, config: &RequestConfig) -> (Arc<IseSelection>, bool) {
        let key = SelectionKey::new(&config.ise, &config.search);
        if let Some(found) = entry.cached_selection(&key) {
            self.cache.count_selection(true);
            return (found, true);
        }
        self.cache.count_selection(false);
        let contexts = entry.contexts();
        let mut finder = IsegenFinder::new(config.search.clone())
            .with_portfolio_threads(config.portfolio_threads);
        let selection = if config.threads > 1 {
            generate_batched_in_contexts(&finder, &contexts, &config.ise, config.threads)
        } else {
            generate_in_contexts(&mut finder, &contexts, &config.ise)
        };
        // Worker clones report into the finder's shared accumulator, so
        // this covers the batched path too.
        if let Ok(mut acc) = self.search_stats.lock() {
            acc.absorb(finder.accumulated_stats());
        }
        let selection = Arc::new(selection);
        entry.store_selection(key, Arc::clone(&selection));
        (selection, false)
    }

    fn op_select(&self, request: &Json) -> Result<Json, ProtoError> {
        let (hash, entry) = self.resolve_app(request)?;
        let config = proto::parse_config(request.get("config"))?;
        let (selection, hit) = self.selection(&entry, &config);
        self.log(format!(
            "select {} → {} ISEs ({})",
            proto::format_hash(hash),
            selection.ises.len(),
            if hit { "memo hit" } else { "computed" }
        ));
        let ises: Vec<Json> = selection
            .ises
            .iter()
            .map(|ise| {
                Json::obj([
                    ("block", ise.block_index.into()),
                    (
                        "block_name",
                        entry.app.blocks()[ise.block_index].name().into(),
                    ),
                    ("nodes", ise.cut.nodes().len().into()),
                    ("inputs", u64::from(ise.cut.input_count()).into()),
                    ("outputs", u64::from(ise.cut.output_count()).into()),
                    ("saved_per_execution", ise.saved_per_execution.into()),
                    ("instances", ise.instances.len().into()),
                ])
            })
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("op", "select".into()),
            ("app", proto::format_hash(hash).into()),
            ("speedup", selection.speedup().into()),
            ("total_sw_cycles", selection.total_sw_cycles.into()),
            ("saved_cycles", selection.saved_cycles.into()),
            ("instances", selection.instance_count().into()),
            ("ises", Json::Arr(ises)),
            ("cache", if hit { "hit" } else { "miss" }.into()),
        ]))
    }

    fn op_rtl(&self, request: &Json) -> Result<Json, ProtoError> {
        let (hash, entry) = self.resolve_app(request)?;
        let config = proto::parse_config(request.get("config"))?;
        let (selection, hit) = self.selection(&entry, &config);
        let library = AfuLibrary::from_selection(&entry.app, self.cache.model(), &selection)
            .map_err(|e| ProtoError::new("rtl", e.to_string()))?;
        self.log(format!(
            "rtl {} → {} instructions, {:.0} gates",
            proto::format_hash(hash),
            library.instructions().len(),
            library.total_gates()
        ));
        let instructions: Vec<Json> = library
            .instructions()
            .iter()
            .map(|inst| {
                Json::obj([
                    ("name", inst.name.as_str().into()),
                    ("cells", inst.netlist.cell_count().into()),
                    ("inputs", inst.netlist.input_count().into()),
                    ("outputs", inst.netlist.output_count().into()),
                    ("gates", inst.gates.into()),
                    ("delay", inst.delay.into()),
                    ("saved_per_execution", inst.saved_per_execution.into()),
                    ("instances", inst.instance_count.into()),
                ])
            })
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("op", "rtl".into()),
            ("app", proto::format_hash(hash).into()),
            ("gates", library.total_gates().into()),
            ("instructions", Json::Arr(instructions)),
            ("verilog", library.emit_verilog().into()),
            ("cache", if hit { "hit" } else { "miss" }.into()),
        ]))
    }

    /// Runs the three-way differential oracle (interpreter ⇔ netlist ⇔
    /// parsed-and-simulated emitted Verilog) over every selected ISE.
    fn op_verify(&self, request: &Json) -> Result<Json, ProtoError> {
        let (hash, entry) = self.resolve_app(request)?;
        let config = proto::parse_config(request.get("config"))?;
        let (vectors, seed) = proto::parse_verify_params(request)?;
        let (selection, hit) = self.selection(&entry, &config);
        let verify_config = VerifyConfig { vectors, seed };
        let reports = verify_selection(&entry.app, &selection, &verify_config)
            .map_err(|e| ProtoError::new("rtl", e.to_string()))?;
        let mismatches: usize = reports.iter().map(|r| r.mismatches).sum();
        self.verifications.fetch_add(1, Ordering::Relaxed);
        self.verified_vectors.fetch_add(
            (vectors as u64).saturating_mul(reports.len() as u64),
            Ordering::Relaxed,
        );
        self.log(format!(
            "verify {} → {} ISEs × {} vectors, {} mismatch(es)",
            proto::format_hash(hash),
            reports.len(),
            vectors,
            mismatches
        ));
        let ises: Vec<Json> = reports
            .iter()
            .map(|r| {
                Json::obj([
                    ("name", r.module.as_str().into()),
                    ("cells", r.cells.into()),
                    ("vectors", r.vectors.into()),
                    ("mismatches", r.mismatches.into()),
                    (
                        "output_bits_covered",
                        Json::Arr(
                            r.output_bits_covered
                                .iter()
                                .map(|&b| u64::from(b).into())
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Ok(Json::obj([
            ("ok", Json::Bool(true)),
            ("op", "verify".into()),
            ("app", proto::format_hash(hash).into()),
            ("vectors_per_ise", vectors.into()),
            ("mismatches", mismatches.into()),
            ("passed", Json::Bool(mismatches == 0)),
            ("ises", Json::Arr(ises)),
            ("cache", if hit { "hit" } else { "miss" }.into()),
        ]))
    }

    fn op_stats(&self) -> Json {
        let c = self.cache.counters();
        let s = self.search_stats.lock().map(|s| *s).unwrap_or_default();
        Json::obj([
            ("ok", Json::Bool(true)),
            ("op", "stats".into()),
            ("entries", c.entries.into()),
            ("context_hits", c.context_hits.into()),
            ("context_misses", c.context_misses.into()),
            ("selection_hits", c.selection_hits.into()),
            ("selection_misses", c.selection_misses.into()),
            ("evictions", c.evictions.into()),
            ("requests", self.requests.load(Ordering::Relaxed).into()),
            ("errors", self.errors.load(Ordering::Relaxed).into()),
            (
                "connections",
                self.connections.load(Ordering::Relaxed).into(),
            ),
            (
                "verifications",
                self.verifications.load(Ordering::Relaxed).into(),
            ),
            (
                "verified_vectors",
                self.verified_vectors.load(Ordering::Relaxed).into(),
            ),
            // K-L search statistics summed over every computed selection:
            // the service-level view of the gain cache and arena pools.
            (
                "search",
                Json::obj([
                    ("fresh_probes", s.fresh_probes.into()),
                    ("cached_probes", s.cached_probes.into()),
                    ("probes_avoided_pct", (s.avoided_fraction() * 100.0).into()),
                    ("commits", s.commits.into()),
                    ("full_invalidations", s.full_invalidations.into()),
                    ("trajectories", s.trajectories.into()),
                    ("arena_reuses", s.arena_reuses.into()),
                    ("arena_allocs", s.arena_allocs.into()),
                ]),
            ),
        ])
    }
}

enum LineRead {
    Line,
    Eof,
    TooLong,
    Stopped,
}

/// Reads one `\n`-terminated line into `buf`, bounding growth: past
/// `cap` bytes the rest of the line is drained and discarded so the
/// connection can keep being served. Read timeouts poll `stop` and
/// otherwise retry with the partial line intact.
fn read_line_capped(
    reader: &mut BufReader<TcpStream>,
    buf: &mut Vec<u8>,
    cap: usize,
    stop: &AtomicBool,
) -> io::Result<LineRead> {
    let mut overflow = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok(chunk) => chunk,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(LineRead::Stopped);
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            return Ok(if overflow {
                LineRead::TooLong
            } else if buf.is_empty() {
                LineRead::Eof
            } else {
                LineRead::Line
            });
        }
        let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (chunk.len(), false),
        };
        if !overflow {
            buf.extend_from_slice(&chunk[..take]);
            if buf.len() > cap {
                overflow = true;
                buf.clear();
            }
        }
        reader.consume(take);
        if done {
            return Ok(if overflow {
                LineRead::TooLong
            } else {
                LineRead::Line
            });
        }
    }
}
