//! The long-lived `ised` server: accepts TCP connections, frames the
//! JSON protocol of [`crate::proto`] with [`crate::wire`], and serves
//! every request from the embedded [`Service`].
//!
//! Concurrency is hand-rolled on scoped threads (no async runtime in the
//! image): the acceptor polls a non-blocking listener so it can observe
//! the shutdown flag, and each connection gets one scoped worker thread.
//! Worker panics are impossible by construction on the request path —
//! every library error is mapped to a structured error response — and a
//! `catch_unwind` backstop turns anything that slips through into an
//! `"internal"` error response instead of a dead connection.
//!
//! Shutdown is event-driven, not poll-bound: every accepted connection
//! registers a handle, and [`Server::request_stop`] half-closes the read
//! side of all of them, so blocked workers observe EOF immediately
//! instead of waiting out a read-timeout poll. In-flight responses still
//! go out — only the read direction is closed.

use crate::json::{self, Json};
use crate::proto::ProtoError;
use crate::service::Service;
use crate::wire::{self, FrameRead, Framing, WireLimits};
use isegen_ir::LatencyModel;
use std::collections::HashMap;
use std::io::{self, BufReader};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::cache::ServeCache;

/// How the server is set up; see [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// LRU bound on cached applications.
    pub cache_capacity: usize,
    /// Log requests and connections to stderr.
    pub verbose: bool,
    /// Append-only disk tier for the cache: replayed on boot, written
    /// through on every submit/selection, so a restarted process comes
    /// back warm. `None` keeps the cache purely in-memory.
    pub disk_path: Option<PathBuf>,
    /// Close a connection that does not start a request within this.
    pub idle_timeout: Option<Duration>,
    /// Once a request's first byte arrived, the complete frame must
    /// arrive within this (slowloris protection).
    pub read_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            cache_capacity: 64,
            verbose: true,
            disk_path: None,
            idle_timeout: None,
            read_deadline: None,
        }
    }
}

/// The `ised` daemon. Construct with [`Server::bind`], run with
/// [`Server::run`] (blocks until a `shutdown`/`drain` request or
/// [`Server::request_stop`]).
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    service: Service,
    config: ServerConfig,
    stop: AtomicBool,
    connections: AtomicU64,
    /// Read-half handles of live connections, so `request_stop` can
    /// unblock every worker instantly. Keyed by a connection id because
    /// workers unregister themselves on exit.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
}

impl Server {
    /// Binds to `addr` (use port 0 for an ephemeral port) with the
    /// paper-default latency model. With `config.disk_path` set, the
    /// cache log is replayed before the first connection is accepted.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let model = LatencyModel::paper_default();
        let cache = match &config.disk_path {
            Some(path) => ServeCache::with_disk(config.cache_capacity, model, path)?,
            None => ServeCache::new(config.cache_capacity, model),
        };
        let service = Service::new(cache, "ised", config.verbose);
        Ok(Server {
            listener,
            local_addr,
            service,
            config,
            stop: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
        })
    }

    /// The bound address (resolves port 0 to the real ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared cache (exposed for in-process tests and stats).
    pub fn cache(&self) -> &ServeCache {
        self.service.cache()
    }

    /// The embedded request engine.
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Asks the accept loop to drain and return, and half-closes the
    /// read side of every live connection so blocked workers wake
    /// immediately. Safe from any thread.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Ok(conns) = self.conns.lock() {
            for stream in conns.values() {
                // In-flight responses still go out on the write half.
                let _ = stream.shutdown(Shutdown::Read);
            }
        }
    }

    fn log(&self, message: impl AsRef<str>) {
        if self.config.verbose {
            eprintln!("[ised] {}", message.as_ref());
        }
    }

    /// Accepts and serves connections until shutdown. Every connection
    /// runs on its own scoped thread; the call returns only after all
    /// of them finished.
    pub fn run(&self) -> io::Result<()> {
        self.log(format!(
            "listening on {} (cache capacity {})",
            self.local_addr, self.config.cache_capacity
        ));
        std::thread::scope(|scope| {
            loop {
                if self.stop.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, peer)) => {
                        self.connections.fetch_add(1, Ordering::Relaxed);
                        self.log(format!("connection from {peer}"));
                        let conn_id = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
                        if let (Ok(clone), Ok(mut conns)) = (stream.try_clone(), self.conns.lock())
                        {
                            conns.insert(conn_id, clone);
                        }
                        scope.spawn(move || {
                            if let Err(e) = self.handle_connection(stream) {
                                self.log(format!("connection {peer} closed: {e}"));
                            } else {
                                self.log(format!("connection {peer} closed"));
                            }
                            if let Ok(mut conns) = self.conns.lock() {
                                conns.remove(&conn_id);
                            }
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => {
                        // Accept errors (ECONNABORTED, EMFILE under fd
                        // pressure, EINTR, …) are transient from the
                        // listener's point of view: log, back off and
                        // keep accepting. Bailing out here would leave
                        // the daemon alive but deaf — workers keep
                        // serving inside the scope while no new client
                        // can ever connect.
                        self.log(format!("accept error (retrying): {e}"));
                        std::thread::sleep(Duration::from_millis(100));
                    }
                }
            }
        });
        // Flush the disk tier so a clean exit never loses the tail.
        self.cache().sync_disk();
        self.log("shutdown complete");
        Ok(())
    }

    fn handle_connection(&self, stream: TcpStream) -> io::Result<()> {
        // A short socket timeout keeps the frame reader's idle/deadline
        // and stop checks responsive; `request_stop` additionally
        // half-closes the socket so waiting here ends instantly.
        stream.set_read_timeout(Some(wire::POLL_INTERVAL))?;
        stream.set_write_timeout(Some(Duration::from_secs(30)))?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let limits = WireLimits {
            idle: self.config.idle_timeout,
            deadline: self.config.read_deadline,
            ..WireLimits::default()
        };
        let mut bytes = Vec::new();
        loop {
            let framing = match wire::read_frame(&mut reader, &mut bytes, &limits, &self.stop)? {
                FrameRead::Frame(framing) => framing,
                FrameRead::Eof | FrameRead::Stopped => return Ok(()),
                FrameRead::TooLong(framing) => {
                    let cap = match framing {
                        Framing::Line => limits.max_line,
                        Framing::Prefixed => limits.max_frame,
                    };
                    self.service.count_error_request();
                    let err = ProtoError::new("protocol", format!("request exceeds {cap} bytes"));
                    self.respond(&mut writer, &err.to_response(), framing)?;
                    match framing {
                        // The oversized line was drained; keep serving.
                        Framing::Line => continue,
                        // An unread prefixed body desynchronizes the
                        // stream; nothing to do but close.
                        Framing::Prefixed => return Ok(()),
                    }
                }
                FrameRead::IdleTimeout => {
                    self.log("closing idle connection");
                    return Ok(());
                }
                FrameRead::DeadlineExceeded => {
                    self.service.count_error_request();
                    let err = ProtoError::new(
                        "timeout",
                        "request did not complete within the read deadline",
                    );
                    // Best effort: a slowloris peer may not read it.
                    let _ = self.respond(&mut writer, &err.to_response(), Framing::Line);
                    return Ok(());
                }
                FrameRead::Malformed(why) => {
                    self.service.count_error_request();
                    let err = ProtoError::new("protocol", why);
                    let _ = self.respond(&mut writer, &err.to_response(), Framing::Line);
                    return Ok(());
                }
            };
            let text = String::from_utf8_lossy(&bytes);
            let trimmed = text.trim();
            if trimmed.is_empty() {
                continue;
            }
            let request = match json::parse(trimmed) {
                Ok(request) => request,
                Err(e) => {
                    self.service.count_error_request();
                    let err = ProtoError::new("parse", e.to_string());
                    self.log(format!("error response: {err}"));
                    self.respond(&mut writer, &err.to_response(), framing)?;
                    continue;
                }
            };
            // Transport-level ops stay with the server; everything else
            // goes through the shared service engine.
            match request.get("op").and_then(Json::as_str) {
                Some("shutdown") => {
                    self.service.count_control_request();
                    self.log("shutdown requested");
                    let response = Json::obj([("ok", Json::Bool(true)), ("op", "shutdown".into())]);
                    self.respond(&mut writer, &response, framing)?;
                    self.request_stop();
                    return Ok(());
                }
                Some("drain") => {
                    // Graceful stop with a durability receipt: sync the
                    // disk log, then acknowledge with the counters a
                    // supervisor needs to confirm nothing was dropped.
                    self.service.count_control_request();
                    self.log("drain requested");
                    let synced = self.cache().sync_disk();
                    let mut response = Json::obj([
                        ("ok", Json::Bool(true)),
                        ("op", "drain".into()),
                        ("requests", self.service.request_count().into()),
                        ("synced", Json::Bool(synced)),
                    ]);
                    if let Some(d) = self.cache().disk_counters() {
                        if let Json::Obj(members) = &mut response {
                            members.push(("disk_appends".to_string(), d.appends.into()));
                        }
                    }
                    self.respond(&mut writer, &response, framing)?;
                    self.request_stop();
                    return Ok(());
                }
                _ => {}
            }
            // The backstop: a panic anywhere in dispatch becomes an
            // "internal" error response, not a dead worker thread.
            let response = catch_unwind(AssertUnwindSafe(|| self.service.handle(&request)))
                .unwrap_or_else(|_| {
                    Err(ProtoError::new(
                        "internal",
                        "request handler panicked; see server log",
                    ))
                })
                .unwrap_or_else(|e| {
                    self.log(format!("error response: {e}"));
                    e.to_response()
                });
            let response = self.augment_stats(&request, response);
            self.respond(&mut writer, &response, framing)?;
        }
    }

    /// Adds the transport-level `connections` counter to `stats`
    /// responses; every other response passes through untouched.
    fn augment_stats(&self, request: &Json, mut response: Json) -> Json {
        if request.get("op").and_then(Json::as_str) == Some("stats") {
            if let Json::Obj(members) = &mut response {
                members.push((
                    "connections".to_string(),
                    self.connections.load(Ordering::Relaxed).into(),
                ));
            }
        }
        response
    }

    /// Serializes and writes one response in the request's framing.
    fn respond(&self, writer: &mut TcpStream, response: &Json, framing: Framing) -> io::Result<()> {
        wire::write_frame(writer, response.to_string().as_bytes(), framing)
    }
}
