//! The daemon's memory: an LRU-bounded map from canonical IR hashes to
//! per-application entries holding the parsed blocks, their reusable
//! [`ContextData`] and memoised selections.
//!
//! Submitting the same block twice costs one parse and zero context
//! builds; requesting the same selection twice costs a map lookup. Both
//! hit/miss pairs are counted and exposed through the `stats` request.

use crate::disk::{DiskLog, Record};
use isegen_core::{BlockContext, ContextData, IseConfig, IseSelection, SearchConfig};
use isegen_ir::{text, Application, LatencyModel, TextError};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Why a submit was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The IR text did not parse.
    Ir(TextError),
    /// A different program already occupies this content hash. FNV-1a is
    /// not collision-resistant, so identity is verified by comparing the
    /// canonical text on every hit — serving one program's ISEs for
    /// another would be silently wrong hardware.
    HashCollision,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Ir(e) => write!(f, "{e}"),
            SubmitError::HashCollision => write!(
                f,
                "content hash collides with a different cached program; \
                 rename the app or evict the cache"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// FNV-1a 64-bit hash — the content key of canonical IR text.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Locks a mutex, surviving poisoning: a panicking worker thread must
/// not take the whole cache down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Everything that distinguishes one selection run from another on the
/// same application. Thread count is deliberately absent: the batched
/// driver is byte-identical to the sequential one at any thread count,
/// so one memoised selection serves them all.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SelectionKey {
    pub(crate) io: (u32, u32),
    pub(crate) max_ises: usize,
    pub(crate) reuse_matching: bool,
    pub(crate) max_passes: usize,
    pub(crate) restarts: usize,
    /// Gain weights by bit pattern (exact, NaN included).
    pub(crate) weights: [u64; 5],
    /// Multilevel knobs `(min_coarse_ops, max_levels, boundary_band)`
    /// when the coarsen→K-L→uncoarsen pipeline is on; `None` keeps
    /// single-level memos from ever aliasing multilevel ones.
    pub(crate) multilevel: Option<(usize, usize, usize)>,
}

impl SelectionKey {
    /// Derives the key from a driver + search configuration.
    pub fn new(config: &IseConfig, search: &SearchConfig) -> Self {
        let w = &search.weights;
        SelectionKey {
            io: (config.io.max_inputs(), config.io.max_outputs()),
            max_ises: config.max_ises,
            reuse_matching: config.reuse_matching,
            max_passes: search.max_passes,
            restarts: search.restarts,
            weights: [
                w.merit.to_bits(),
                w.io_penalty.to_bits(),
                w.affinity.to_bits(),
                w.growth.to_bits(),
                w.independence.to_bits(),
            ],
            multilevel: search
                .multilevel
                .map(|ml| (ml.min_coarse_ops, ml.max_levels, ml.boundary_band)),
        }
    }
}

/// One cached application: parsed blocks, canonical text, per-block
/// context data and memoised selections.
#[derive(Debug)]
pub struct AppEntry {
    /// The parsed application.
    pub app: Application,
    /// Canonical serialization (the hashed bytes).
    pub canonical: String,
    /// Per-block search precomputation, in block order.
    pub contexts: Vec<Arc<ContextData>>,
    selections: Mutex<HashMap<SelectionKey, Arc<IseSelection>>>,
}

impl AppEntry {
    fn build(text_ir: &str, model: &LatencyModel) -> Result<AppEntry, TextError> {
        let app = text::parse_application(text_ir)?;
        let canonical = text::write_application(&app);
        let contexts = app
            .blocks()
            .iter()
            .map(|b| BlockContext::new(b, model).data())
            .collect();
        Ok(AppEntry {
            app,
            canonical,
            contexts,
            selections: Mutex::new(HashMap::new()),
        })
    }

    /// Reattaches the cached data to live [`BlockContext`]s (cheap; no
    /// recomputation).
    pub fn contexts(&self) -> Vec<BlockContext<'_>> {
        self.app
            .blocks()
            .iter()
            .zip(&self.contexts)
            .map(|(b, d)| BlockContext::with_data(b, Arc::clone(d)))
            .collect()
    }

    /// The memoised selection for `key`, if any.
    pub fn cached_selection(&self, key: &SelectionKey) -> Option<Arc<IseSelection>> {
        lock(&self.selections).get(key).cloned()
    }

    /// Memoises `selection` under `key` (first writer wins; the race can
    /// only store identical values because the drivers are
    /// deterministic). Returns whether this call was the first writer.
    pub fn store_selection(&self, key: SelectionKey, selection: Arc<IseSelection>) -> bool {
        let mut selections = lock(&self.selections);
        if selections.contains_key(&key) {
            return false;
        }
        selections.insert(key, selection);
        true
    }
}

/// A point-in-time view of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Lookups that found an application entry.
    pub context_hits: u64,
    /// Lookups that missed (unknown hash or fresh submit).
    pub context_misses: u64,
    /// Selection requests answered from the memo.
    pub selection_hits: u64,
    /// Selection requests that had to run the driver.
    pub selection_misses: u64,
    /// Entries evicted by the LRU bound.
    pub evictions: u64,
    /// Live entries.
    pub entries: usize,
}

/// Whether a replayed selection's shape still matches the application
/// it claims to memoise: every block index in range and every node set
/// sized exactly to its block's DAG. Anything else would feed the
/// search structures sets of the wrong capacity.
fn selection_fits(entry: &AppEntry, selection: &IseSelection) -> bool {
    let blocks = entry.app.blocks();
    let fits = |block_index: usize, nodes: &isegen_graph::NodeSet| {
        blocks
            .get(block_index)
            .is_some_and(|b| b.dag().node_count() == nodes.capacity())
    };
    selection.ises.iter().all(|ise| {
        fits(ise.block_index, ise.cut.nodes())
            && ise
                .instances
                .iter()
                .all(|inst| fits(inst.block_index, &inst.nodes))
    })
}

#[derive(Default)]
struct Lru {
    map: HashMap<u64, Arc<AppEntry>>,
    /// Keys from least- to most-recently used.
    order: VecDeque<u64>,
}

impl Lru {
    fn touch(&mut self, hash: u64) {
        if let Some(i) = self.order.iter().position(|&h| h == hash) {
            self.order.remove(i);
        }
        self.order.push_back(hash);
    }
}

/// A snapshot of the disk-tier counters, present when the cache was
/// opened with a log path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskCounters {
    /// Records successfully appended (and fsync'd) this run.
    pub appends: u64,
    /// Append attempts that failed at the I/O layer (the cache keeps
    /// serving from memory; the log may miss those records).
    pub append_errors: u64,
    /// Applications rebuilt from the log on boot.
    pub replayed_apps: u64,
    /// Selection memos rebuilt from the log on boot.
    pub replayed_selections: u64,
    /// Replayed records skipped because they no longer validate against
    /// their application (shape mismatch after a format change).
    pub skipped_records: u64,
    /// Bytes of corrupt tail truncated on boot (torn write recovery).
    pub truncated_bytes: u64,
}

/// Mutable state behind the disk tier.
struct DiskTier {
    log: DiskLog,
    appends: AtomicU64,
    append_errors: AtomicU64,
    replayed_apps: u64,
    replayed_selections: u64,
    skipped_records: u64,
    truncated_bytes: u64,
}

/// The LRU-bounded application cache shared by every worker thread.
pub struct ServeCache {
    capacity: usize,
    model: LatencyModel,
    lru: Mutex<Lru>,
    disk: Option<DiskTier>,
    context_hits: AtomicU64,
    context_misses: AtomicU64,
    selection_hits: AtomicU64,
    selection_misses: AtomicU64,
    evictions: AtomicU64,
}

impl ServeCache {
    /// An empty cache bounded to `capacity` applications (minimum 1).
    pub fn new(capacity: usize, model: LatencyModel) -> ServeCache {
        ServeCache {
            capacity: capacity.max(1),
            model,
            lru: Mutex::new(Lru::default()),
            disk: None,
            context_hits: AtomicU64::new(0),
            context_misses: AtomicU64::new(0),
            selection_hits: AtomicU64::new(0),
            selection_misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache backed by the append-only log at `path`: the log's valid
    /// prefix is replayed into memory (warm restart) and every fresh
    /// submit / computed selection is appended and fsync'd from then on.
    ///
    /// Replay is two-pass (applications first, then selections), so log
    /// record order across threads never loses a memo. Records that no
    /// longer validate — unknown app hash, block index or node-set shape
    /// out of range — are counted in
    /// [`DiskCounters::skipped_records`] and ignored.
    pub fn with_disk(
        capacity: usize,
        model: LatencyModel,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<ServeCache> {
        let (log, report) = DiskLog::open(path)?;
        let mut cache = ServeCache::new(capacity, model);
        let mut replayed_apps = 0u64;
        let mut replayed_selections = 0u64;
        let mut skipped = 0u64;
        {
            let mut lru = lock(&cache.lru);
            for record in &report.records {
                let Record::App { hash, canonical } = record else {
                    continue;
                };
                if lru.map.contains_key(hash) {
                    continue;
                }
                match AppEntry::build(canonical, &cache.model) {
                    Ok(entry) if fnv1a(entry.canonical.as_bytes()) == *hash => {
                        lru.map.insert(*hash, Arc::new(entry));
                        lru.touch(*hash);
                        replayed_apps += 1;
                    }
                    _ => skipped += 1,
                }
            }
            for record in report.records {
                let Record::Selection {
                    app_hash,
                    key,
                    selection,
                } = record
                else {
                    continue;
                };
                let Some(entry) = lru.map.get(&app_hash) else {
                    skipped += 1;
                    continue;
                };
                if !selection_fits(entry, &selection) {
                    skipped += 1;
                    continue;
                }
                if entry.store_selection(key, Arc::new(selection)) {
                    replayed_selections += 1;
                }
            }
            // Replaying more applications than the LRU bound keeps the
            // most recently logged ones, like any other insertion burst.
            while lru.map.len() > cache.capacity {
                if let Some(oldest) = lru.order.pop_front() {
                    lru.map.remove(&oldest);
                }
            }
        }
        cache.disk = Some(DiskTier {
            log,
            appends: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            replayed_apps,
            replayed_selections,
            skipped_records: skipped,
            truncated_bytes: report.truncated_bytes,
        });
        Ok(cache)
    }

    /// Appends `record`, counting instead of failing: a full or broken
    /// disk degrades the warm-restart guarantee, never live serving.
    fn disk_append(&self, record: &Record) {
        if let Some(disk) = &self.disk {
            match disk.log.append(record) {
                Ok(()) => {
                    disk.appends.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    disk.append_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    /// Memoises a *computed* selection and writes it through to the
    /// disk log (replayed selections and memo-hit races append nothing).
    pub fn record_selection(
        &self,
        hash: u64,
        entry: &AppEntry,
        key: SelectionKey,
        selection: Arc<IseSelection>,
    ) {
        if entry.store_selection(key.clone(), Arc::clone(&selection)) {
            self.disk_append(&Record::Selection {
                app_hash: hash,
                key,
                selection: (*selection).clone(),
            });
        }
    }

    /// Snapshot of the disk-tier counters (`None` without a disk tier).
    pub fn disk_counters(&self) -> Option<DiskCounters> {
        self.disk.as_ref().map(|d| DiskCounters {
            appends: d.appends.load(Ordering::Relaxed),
            append_errors: d.append_errors.load(Ordering::Relaxed),
            replayed_apps: d.replayed_apps,
            replayed_selections: d.replayed_selections,
            skipped_records: d.skipped_records,
            truncated_bytes: d.truncated_bytes,
        })
    }

    /// Forces the disk log to stable storage (no-op without a disk
    /// tier). Returns whether the sync succeeded.
    pub fn sync_disk(&self) -> bool {
        match &self.disk {
            Some(d) => d.log.sync().is_ok(),
            None => true,
        }
    }

    /// The latency model entries are built against.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// Parses `text_ir` and returns `(hash, entry, fresh)`, building and
    /// inserting the entry when its canonical form is not cached.
    /// Equivalent texts (whitespace, comments, node naming) dedupe onto
    /// one entry because the hash covers the canonical serialization.
    pub fn submit(&self, text_ir: &str) -> Result<(u64, Arc<AppEntry>, bool), SubmitError> {
        // Parse outside the lock (the expensive part; also the fallible
        // part — a malformed submit never touches the cache).
        let candidate = AppEntry::build(text_ir, &self.model).map_err(SubmitError::Ir)?;
        let hash = fnv1a(candidate.canonical.as_bytes());
        let mut lru = lock(&self.lru);
        if let Some(entry) = lru.map.get(&hash).cloned() {
            if entry.canonical != candidate.canonical {
                return Err(SubmitError::HashCollision);
            }
            lru.touch(hash);
            self.context_hits.fetch_add(1, Ordering::Relaxed);
            return Ok((hash, entry, false));
        }
        self.context_misses.fetch_add(1, Ordering::Relaxed);
        let entry = Arc::new(candidate);
        lru.map.insert(hash, Arc::clone(&entry));
        lru.touch(hash);
        while lru.map.len() > self.capacity {
            if let Some(oldest) = lru.order.pop_front() {
                lru.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        drop(lru);
        // Write-through outside the LRU lock: replay is two-pass, so a
        // selection append racing ahead of this app record is harmless.
        self.disk_append(&Record::App {
            hash,
            canonical: entry.canonical.clone(),
        });
        Ok((hash, entry, true))
    }

    /// Looks an entry up by hash, counting the hit or miss.
    pub fn get(&self, hash: u64) -> Option<Arc<AppEntry>> {
        let mut lru = lock(&self.lru);
        match lru.map.get(&hash).cloned() {
            Some(entry) => {
                lru.touch(hash);
                self.context_hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            None => {
                self.context_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records the outcome of a selection-memo probe.
    pub fn count_selection(&self, hit: bool) {
        if hit {
            self.selection_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.selection_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of all counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            context_hits: self.context_hits.load(Ordering::Relaxed),
            context_misses: self.context_misses.load(Ordering::Relaxed),
            selection_hits: self.selection_hits.load(Ordering::Relaxed),
            selection_misses: self.selection_misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: lock(&self.lru).map.len(),
        }
    }
}

impl std::fmt::Debug for ServeCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeCache")
            .field("capacity", &self.capacity)
            .field("counters", &self.counters())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ir(name: &str) -> String {
        format!("app {name}\nblock b freq 3\n  x = in\n  y = add x x\nend\n")
    }

    #[test]
    fn submit_dedupes_on_canonical_form() {
        let cache = ServeCache::new(8, LatencyModel::paper_default());
        let (h1, _, fresh1) = cache.submit(&tiny_ir("a")).unwrap();
        // Same program, different whitespace/comments/node names.
        let noisy =
            "# hi\napp \"a\"\nblock \"b\" freq 3\n\n  alpha = in\n  beta = add alpha alpha\nend\n";
        let (h2, _, fresh2) = cache.submit(noisy).unwrap();
        assert_eq!(h1, h2);
        assert!(fresh1);
        assert!(!fresh2, "second submit is a cache hit");
        let c = cache.counters();
        assert_eq!((c.context_hits, c.context_misses, c.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_oldest_first() {
        let cache = ServeCache::new(2, LatencyModel::paper_default());
        let (ha, ..) = cache.submit(&tiny_ir("a")).unwrap();
        let (hb, ..) = cache.submit(&tiny_ir("b")).unwrap();
        assert!(cache.get(ha).is_some(), "touch a: b is now oldest");
        let (hc, ..) = cache.submit(&tiny_ir("c")).unwrap();
        assert!(cache.get(hb).is_none(), "b evicted");
        assert!(cache.get(ha).is_some());
        assert!(cache.get(hc).is_some());
        let c = cache.counters();
        assert_eq!(c.evictions, 1);
        assert_eq!(c.entries, 2);
    }

    #[test]
    fn malformed_ir_is_rejected_without_insertion() {
        let cache = ServeCache::new(8, LatencyModel::paper_default());
        assert!(cache.submit("app a\nblock b\n  x = frob\nend\n").is_err());
        assert_eq!(cache.counters().entries, 0);
    }

    #[test]
    fn selection_keys_distinguish_configs() {
        use isegen_core::{GainWeights, IoConstraints};
        let base = IseConfig::paper_default();
        let search = SearchConfig::default();
        let k1 = SelectionKey::new(&base, &search);
        assert_eq!(k1, SelectionKey::new(&base.clone(), &search.clone()));
        let other = IseConfig {
            io: IoConstraints::new(6, 3),
            ..base
        };
        assert_ne!(k1, SelectionKey::new(&other, &search));
        let nan_search = search.clone().with_weights(GainWeights {
            merit: f64::NAN,
            ..search.weights
        });
        let kn = SelectionKey::new(&base, &nan_search);
        assert_ne!(k1, kn);
        assert_eq!(
            kn,
            SelectionKey::new(&base, &nan_search),
            "NaN keys are stable"
        );
        // Multilevel on/off and each knob must produce distinct keys —
        // a single-level memo must never answer a multilevel request.
        use isegen_core::MultilevelConfig;
        let ml = search.clone().with_multilevel(MultilevelConfig::default());
        let km = SelectionKey::new(&base, &ml);
        assert_ne!(k1, km);
        let ml2 = search
            .clone()
            .with_multilevel(MultilevelConfig::default().with_boundary_band(5));
        assert_ne!(km, SelectionKey::new(&base, &ml2));
        assert_eq!(km, SelectionKey::new(&base, &ml.clone()));
    }
}
