//! The crash-warm tier of [`crate::cache::ServeCache`]: an append-only,
//! fsync'd-on-write log of canonical IR texts and selection memos.
//!
//! A shard that is SIGKILLed and restarted replays this log on boot and
//! comes back with every application parsed and every computed selection
//! memoised — the expensive K-L search never reruns for work the dead
//! process had already finished.
//!
//! # Format
//!
//! The file starts with the 8-byte magic `ISEDLOG1`, followed by
//! records. Each record is
//!
//! ```text
//! u32 LE payload length | u64 LE FNV-1a(payload) | payload bytes
//! ```
//!
//! Payloads are tagged (`1` = application, `2` = selection) and encode
//! everything needed to rebuild the memo bit-for-bit: node sets as id
//! lists, `f64`s by bit pattern (NaN weights survive), counts as fixed-
//! width little-endian integers. See [`encode_record`].
//!
//! # Recovery guarantees
//!
//! Replay walks records from the front and stops at the first record
//! that is short, fails its checksum, or does not decode; the file is
//! then **truncated to the last good byte** and appends resume there.
//! A torn write (power loss, SIGKILL mid-`write`) therefore costs at
//! most the interrupted record — everything before it is served warm.
//! Appends are `fsync`'d before the caller proceeds, so a selection
//! that was answered to a client is on disk.

use crate::cache::{fnv1a, SelectionKey};
use isegen_core::{Cut, Ise, IseInstance, IseSelection};
use isegen_graph::{NodeId, NodeSet};
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// File magic: identifies the log and its format revision.
pub const MAGIC: &[u8; 8] = b"ISEDLOG1";

/// Hard cap on one record payload. The largest bundled workload's
/// canonical IR is well under 1 MiB; 64 MiB matches the wire-level
/// frame cap so anything the daemon accepted can be logged.
pub const MAX_RECORD_BYTES: usize = 64 << 20;

/// One replayable unit of cache state.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A submitted application: content hash + canonical IR text.
    App {
        /// FNV-1a of `canonical` (validated on replay).
        hash: u64,
        /// The canonical serialization of the program.
        canonical: String,
    },
    /// A computed selection memo for a previously-logged application.
    Selection {
        /// Content hash of the owning application.
        app_hash: u64,
        /// The configuration the selection was computed under.
        key: SelectionKey,
        /// The memoised result.
        selection: IseSelection,
    },
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_node_set(out: &mut Vec<u8>, set: &NodeSet) {
    put_u32(out, set.capacity() as u32);
    put_u32(out, set.len() as u32);
    for id in set.iter() {
        put_u32(out, id.index() as u32);
    }
}

/// Serializes one record payload (tag + body, no length/checksum).
pub fn encode_record(record: &Record) -> Vec<u8> {
    let mut out = Vec::new();
    match record {
        Record::App { hash, canonical } => {
            out.push(1);
            put_u64(&mut out, *hash);
            put_u32(&mut out, canonical.len() as u32);
            out.extend_from_slice(canonical.as_bytes());
        }
        Record::Selection {
            app_hash,
            key,
            selection,
        } => {
            // Tag 2 is the pre-multilevel layout; single-level keys keep
            // using it so logs written by older builds replay unchanged.
            // Multilevel keys get tag 3 with the three knobs appended.
            out.push(if key.multilevel.is_some() { 3 } else { 2 });
            put_u64(&mut out, *app_hash);
            put_u32(&mut out, key.io.0);
            put_u32(&mut out, key.io.1);
            put_u64(&mut out, key.max_ises as u64);
            out.push(u8::from(key.reuse_matching));
            put_u64(&mut out, key.max_passes as u64);
            put_u64(&mut out, key.restarts as u64);
            for w in key.weights {
                put_u64(&mut out, w);
            }
            if let Some((min_coarse_ops, max_levels, boundary_band)) = key.multilevel {
                put_u64(&mut out, min_coarse_ops as u64);
                put_u64(&mut out, max_levels as u64);
                put_u64(&mut out, boundary_band as u64);
            }
            put_u64(&mut out, selection.total_sw_cycles);
            put_u64(&mut out, selection.saved_cycles);
            put_u32(&mut out, selection.ises.len() as u32);
            for ise in &selection.ises {
                put_u32(&mut out, ise.block_index as u32);
                put_u64(&mut out, ise.saved_per_execution);
                put_u32(&mut out, ise.cut.input_count());
                put_u32(&mut out, ise.cut.output_count());
                put_u64(&mut out, ise.cut.software_latency());
                put_u64(&mut out, ise.cut.hardware_latency().to_bits());
                put_node_set(&mut out, ise.cut.nodes());
                put_u32(&mut out, ise.instances.len() as u32);
                for inst in &ise.instances {
                    put_u32(&mut out, inst.block_index as u32);
                    put_node_set(&mut out, &inst.nodes);
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Why a payload failed to decode. Replay treats any of these as the
/// end of the valid prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub &'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt record: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(DecodeError("short payload"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A count that must plausibly fit in the remaining bytes (each
    /// element consuming at least `min_elem_bytes`), so hostile lengths
    /// cannot trigger huge allocations before hitting "short payload".
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes) > self.bytes.len() - self.pos {
            return Err(DecodeError("count exceeds payload"));
        }
        Ok(n)
    }

    fn node_set(&mut self) -> Result<NodeSet, DecodeError> {
        let capacity = self.u32()? as usize;
        if capacity > MAX_RECORD_BYTES {
            return Err(DecodeError("node-set capacity out of range"));
        }
        let n = self.count(4)?;
        let mut set = NodeSet::new(capacity);
        for _ in 0..n {
            let id = self.u32()? as usize;
            if id >= capacity {
                return Err(DecodeError("node id out of capacity"));
            }
            set.insert(NodeId::from_index(id));
        }
        if set.len() != n {
            return Err(DecodeError("duplicate node id"));
        }
        Ok(set)
    }

    fn done(&self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError("trailing bytes"))
        }
    }
}

/// Decodes one record payload produced by [`encode_record`].
pub fn decode_record(payload: &[u8]) -> Result<Record, DecodeError> {
    let mut r = Reader {
        bytes: payload,
        pos: 0,
    };
    let record = match r.u8()? {
        1 => {
            let hash = r.u64()?;
            let len = r.count(1)?;
            let text = std::str::from_utf8(r.take(len)?)
                .map_err(|_| DecodeError("canonical IR is not UTF-8"))?
                .to_string();
            if fnv1a(text.as_bytes()) != hash {
                return Err(DecodeError("canonical IR does not match its hash"));
            }
            Record::App {
                hash,
                canonical: text,
            }
        }
        tag @ (2 | 3) => {
            let app_hash = r.u64()?;
            let mut key = SelectionKey {
                io: (r.u32()?, r.u32()?),
                max_ises: r.u64()? as usize,
                reuse_matching: r.u8()? != 0,
                max_passes: r.u64()? as usize,
                restarts: r.u64()? as usize,
                weights: [r.u64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?],
                multilevel: None,
            };
            if tag == 3 {
                key.multilevel = Some((r.u64()? as usize, r.u64()? as usize, r.u64()? as usize));
            }
            let total_sw_cycles = r.u64()?;
            let saved_cycles = r.u64()?;
            let n_ises = r.count(1)?;
            let mut ises = Vec::with_capacity(n_ises);
            for _ in 0..n_ises {
                let block_index = r.u32()? as usize;
                let saved_per_execution = r.u64()?;
                let inputs = r.u32()?;
                let outputs = r.u32()?;
                let sw_latency = r.u64()?;
                let hw_latency = f64::from_bits(r.u64()?);
                let nodes = r.node_set()?;
                let cut = Cut::from_saved(nodes, inputs, outputs, sw_latency, hw_latency);
                let n_inst = r.count(1)?;
                let mut instances = Vec::with_capacity(n_inst);
                for _ in 0..n_inst {
                    let block_index = r.u32()? as usize;
                    let nodes = r.node_set()?;
                    instances.push(IseInstance { block_index, nodes });
                }
                ises.push(Ise {
                    block_index,
                    cut,
                    instances,
                    saved_per_execution,
                });
            }
            r.done()?;
            Record::Selection {
                app_hash,
                key,
                selection: IseSelection {
                    ises,
                    total_sw_cycles,
                    saved_cycles,
                },
            }
        }
        _ => return Err(DecodeError("unknown record tag")),
    };
    Ok(record)
}

// ---------------------------------------------------------------------
// The log file
// ---------------------------------------------------------------------

/// What replay found in an existing log.
#[derive(Debug, Default)]
pub struct ReplayReport {
    /// Every record of the valid prefix, in append order.
    pub records: Vec<Record>,
    /// Bytes cut off the tail (torn write / corruption); 0 for a clean
    /// log.
    pub truncated_bytes: u64,
    /// Length of the valid prefix the file was truncated to.
    pub valid_bytes: u64,
}

/// The append-only on-disk cache log. All writes are serialized through
/// one handle and `fsync`'d before returning.
#[derive(Debug)]
pub struct DiskLog {
    path: PathBuf,
    file: Mutex<File>,
}

impl DiskLog {
    /// Opens (or creates) the log at `path`, replays its valid prefix
    /// and truncates any corrupt tail so appends resume cleanly.
    pub fn open(path: impl AsRef<Path>) -> io::Result<(DiskLog, ReplayReport)> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let bytes = std::fs::read(&path)?;
        let mut report = ReplayReport::default();

        // An unrecognized header means this is not (a valid prefix of)
        // our log — start over rather than appending garbage to garbage.
        let mut good = if bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC[..] {
            MAGIC.len()
        } else if bytes.is_empty() {
            // Fresh file: seed the header. There is nothing to replay —
            // return before the record loop, which indexes past the
            // (still empty) in-memory snapshot otherwise.
            file.write_all(MAGIC)?;
            file.sync_data()?;
            report.valid_bytes = MAGIC.len() as u64;
            let log = DiskLog {
                path,
                file: Mutex::new(file),
            };
            return Ok((log, report));
        } else {
            // Short or foreign header: truncate to zero and re-seed.
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(MAGIC)?;
            file.sync_data()?;
            report.truncated_bytes = bytes.len() as u64;
            report.valid_bytes = MAGIC.len() as u64;
            let log = DiskLog {
                path,
                file: Mutex::new(file),
            };
            return Ok((log, report));
        };

        loop {
            let rest = &bytes[good..];
            if rest.is_empty() {
                break;
            }
            let Some(header) = rest.get(..12) else { break };
            let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
            if len == 0 || len > MAX_RECORD_BYTES {
                break;
            }
            let sum = u64::from_le_bytes(header[4..12].try_into().unwrap());
            let Some(payload) = rest.get(12..12 + len) else {
                break;
            };
            if fnv1a(payload) != sum {
                break;
            }
            let Ok(record) = decode_record(payload) else {
                break;
            };
            report.records.push(record);
            good += 12 + len;
        }

        if good < bytes.len() {
            report.truncated_bytes = (bytes.len() - good) as u64;
            file.set_len(good as u64)?;
            file.sync_data()?;
        }
        report.valid_bytes = good as u64;
        file.seek(SeekFrom::Start(good as u64))?;
        Ok((
            DiskLog {
                path,
                file: Mutex::new(file),
            },
            report,
        ))
    }

    /// Appends one record and `fsync`s it. When this returns `Ok`, a
    /// replay after any crash will see the record.
    pub fn append(&self, record: &Record) -> io::Result<()> {
        let payload = encode_record(record);
        if payload.len() > MAX_RECORD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "record exceeds MAX_RECORD_BYTES",
            ));
        }
        let mut framed = Vec::with_capacity(12 + payload.len());
        framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        framed.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        framed.extend_from_slice(&payload);
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        file.write_all(&framed)?;
        file.sync_data()
    }

    /// Forces pending OS buffers to disk (appends already sync; this is
    /// the belt-and-braces call on `drain`).
    pub fn sync(&self) -> io::Result<()> {
        self.file
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .sync_data()
    }

    /// Where the log lives.
    pub fn path(&self) -> &Path {
        &self.path
    }
}
