//! The `ised` wire protocol: framed JSON requests and responses, plus
//! the bounds-checked translation from request fields to library
//! configuration.
//!
//! Every request is one JSON object with an `"op"` member; every
//! response is one JSON object with an `"ok"` member. Failures carry
//! `"error"` (human-readable) and `"kind"` (stable machine-readable
//! tag) — a malformed or hostile request can never kill the connection,
//! let alone the worker thread.
//!
//! Two framings share a connection and may interleave (see
//! [`crate::wire`]); each response uses its request's framing:
//!
//! - **Line** (legacy): one JSON document per `\n`-terminated line,
//!   capped at [`crate::wire::MAX_LINE_BYTES`].
//! - **Length-prefixed**: `#<decimal byte count>\n`, the payload, `\n`.
//!   Carries documents with embedded newlines and payloads up to
//!   [`crate::wire::MAX_FRAME_BYTES`].
//!
//! | op         | request fields                          | response |
//! |------------|-----------------------------------------|----------|
//! | `ping`     | —                                       | `{"ok":true,"op":"pong"}` |
//! | `submit`   | `ir` (text IR)                          | app hash + shape |
//! | `select`   | `app` (hash) or `ir`, optional `config` | selection summary |
//! | `rtl`      | `app` (hash) or `ir`, optional `config` | Verilog + area |
//! | `verify`   | `app` (hash) or `ir`, optional `config`, `vectors`, `seed` | differential-test report |
//! | `lint`     | `app` (hash) or `ir`, optional `config` | static-analysis diagnostics (`A001`..) |
//! | `stats`    | —                                       | cache/request counters |
//! | `drain`    | — (`ised`) / `shard` index (router)     | durability receipt; `ised` exits, the router recycles the shard warm |
//! | `shutdown` | —                                       | ack, then the server drains |
//!
//! `isegen-router` speaks the same protocol on behalf of a shard fleet:
//! `ping` and `stats` are answered by the router itself (`stats`
//! aggregates per-shard health and counters), `drain` takes a numeric
//! `"shard"` and restarts that shard warm from its disk log, `shutdown`
//! stops the fleet, and everything else is consistent-hash routed by
//! canonical-IR key with retries, failover and an in-process fallback.
//!
//! `config` members (all optional): `io` (`[inputs, outputs]`),
//! `max_ises`, `reuse`, `threads`, `portfolio_threads`, `max_passes`,
//! `restarts`, `weights` (`{"merit":…, "io_penalty":…, "affinity":…,
//! "growth":…, "independence":…}`) and `multilevel`
//! (`{"min_coarse_ops":…, "max_levels":…, "boundary_band":…}`, each
//! member optional). Defaults are the paper's headline configuration.
//! `threads` is the overall driver budget (block waves × intra-block
//! portfolios, split automatically); `portfolio_threads` additionally
//! floors the intra-block portfolio fan-out — useful when a request has
//! one huge block and `threads` is left at 1. `multilevel` enables the
//! coarsen→K-L→uncoarsen pipeline on blocks whose free-node count
//! exceeds `min_coarse_ops`; smaller blocks run the single-level search
//! unchanged.

use crate::json::Json;
use isegen_core::{GainWeights, IoConstraints, IseConfig, MultilevelConfig, SearchConfig};
use std::fmt;

/// Upper bound on `max_ises`, `max_passes`, `restarts` and `threads` in
/// a request — generous for real use, small enough that one hostile
/// request cannot pin a worker thread forever.
pub const MAX_KNOB: u64 = 4096;

/// A structured protocol failure, rendered as an error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable machine-readable tag (`parse`, `protocol`, `ir`,
    /// `collision`, `not_found`, `rtl`, `internal`).
    pub kind: &'static str,
    /// Human-readable description.
    pub message: String,
    /// 1-based source line, when the error points into submitted text
    /// IR (`ir`-kind errors).
    pub line: Option<u32>,
    /// 1-based source column of the offending token, when it could be
    /// located in the line.
    pub column: Option<u32>,
}

impl ProtoError {
    /// Builds an error with the given tag.
    pub fn new(kind: &'static str, message: impl Into<String>) -> ProtoError {
        ProtoError {
            kind,
            message: message.into(),
            line: None,
            column: None,
        }
    }

    /// Attaches a source position (1-based line, optional column) to
    /// the error — the `"line"`/`"column"` members of the response.
    pub fn with_position(mut self, line: u32, column: Option<u32>) -> ProtoError {
        self.line = Some(line);
        self.column = column;
        self
    }

    /// The one-line JSON error response.
    pub fn to_response(&self) -> Json {
        let mut members = vec![
            ("ok", Json::Bool(false)),
            ("kind", Json::from(self.kind)),
            ("error", Json::from(self.message.clone())),
        ];
        if let Some(line) = self.line {
            members.push(("line", Json::from(u64::from(line))));
        }
        if let Some(column) = self.column {
            members.push(("column", Json::from(u64::from(column))));
        }
        Json::obj(members)
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind, self.message)
    }
}

impl std::error::Error for ProtoError {}

/// A fully resolved request configuration: driver + search + threads.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestConfig {
    /// Problem-2 driver configuration.
    pub ise: IseConfig,
    /// K-L search configuration.
    pub search: SearchConfig,
    /// Driver thread count (1 = sequential driver). The budget is split
    /// between block-level waves and intra-block portfolios.
    pub threads: usize,
    /// Floor on the intra-block portfolio thread count (1 = sequential
    /// portfolio unless the driver assigns more from `threads`). Never
    /// changes results — portfolio output is byte-identical at every
    /// thread count — so it is deliberately *not* part of the selection
    /// memo key.
    pub portfolio_threads: usize,
}

impl Default for RequestConfig {
    fn default() -> Self {
        RequestConfig {
            ise: IseConfig::paper_default(),
            search: SearchConfig::default(),
            threads: 1,
            portfolio_threads: 1,
        }
    }
}

fn bounded(obj: &Json, key: &'static str, default: usize) -> Result<usize, ProtoError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => match v.as_u64() {
            Some(n) if (1..=MAX_KNOB).contains(&n) => Ok(n as usize),
            _ => Err(ProtoError::new(
                "protocol",
                format!("config.{key} must be an integer in 1..={MAX_KNOB}"),
            )),
        },
    }
}

fn bounded_ml(obj: &Json, key: &'static str, default: usize) -> Result<usize, ProtoError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => match v.as_u64() {
            Some(n) if (1..=MAX_KNOB).contains(&n) => Ok(n as usize),
            _ => Err(ProtoError::new(
                "protocol",
                format!("config.multilevel.{key} must be an integer in 1..={MAX_KNOB}"),
            )),
        },
    }
}

fn weight(obj: &Json, key: &'static str, default: f64) -> Result<f64, ProtoError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_f64().ok_or_else(|| {
            ProtoError::new("protocol", format!("config.weights.{key} must be a number"))
        }),
    }
}

/// Parses the optional `config` member of a `select`/`rtl` request.
///
/// Every field is validated against library preconditions — e.g. `io`
/// components must be ≥ 1 because [`IoConstraints::new`] panics on zero;
/// the protocol turns what would be a panic into a structured error.
pub fn parse_config(config: Option<&Json>) -> Result<RequestConfig, ProtoError> {
    let mut out = RequestConfig::default();
    let Some(obj) = config else { return Ok(out) };
    if !matches!(obj, Json::Obj(_)) {
        return Err(ProtoError::new("protocol", "config must be an object"));
    }
    if let Some(io) = obj.get("io") {
        let parts = io.as_array().unwrap_or(&[]);
        let (Some(i), Some(o)) = (
            parts.first().and_then(Json::as_u64),
            parts.get(1).and_then(Json::as_u64),
        ) else {
            return Err(ProtoError::new(
                "protocol",
                "config.io must be [max_inputs, max_outputs]",
            ));
        };
        if !(1..=MAX_KNOB).contains(&i) || !(1..=MAX_KNOB).contains(&o) {
            return Err(ProtoError::new(
                "protocol",
                format!("config.io components must be in 1..={MAX_KNOB}"),
            ));
        }
        out.ise.io = IoConstraints::new(i as u32, o as u32);
    }
    out.ise.max_ises = bounded(obj, "max_ises", out.ise.max_ises)?;
    if let Some(reuse) = obj.get("reuse") {
        out.ise.reuse_matching = reuse
            .as_bool()
            .ok_or_else(|| ProtoError::new("protocol", "config.reuse must be a boolean"))?;
    }
    out.threads = bounded(obj, "threads", out.threads)?;
    out.portfolio_threads = bounded(obj, "portfolio_threads", out.portfolio_threads)?;
    // The two thread knobs multiply (wave workers × intra-block
    // portfolio), so bound the *product*: otherwise a single request
    // with both at MAX_KNOB could ask the daemon for ~16M OS threads.
    if out.threads.saturating_mul(out.portfolio_threads) > MAX_KNOB as usize {
        return Err(ProtoError::new(
            "protocol",
            format!("config.threads × config.portfolio_threads must be ≤ {MAX_KNOB}"),
        ));
    }
    out.search.max_passes = bounded(obj, "max_passes", out.search.max_passes)?;
    out.search.restarts = bounded(obj, "restarts", out.search.restarts)?;
    if let Some(ml) = obj.get("multilevel") {
        if !matches!(ml, Json::Obj(_)) {
            return Err(ProtoError::new(
                "protocol",
                "config.multilevel must be an object",
            ));
        }
        let d = MultilevelConfig::default();
        out.search = out.search.with_multilevel(
            MultilevelConfig::new()
                .with_min_coarse_ops(bounded_ml(ml, "min_coarse_ops", d.min_coarse_ops)?)
                .with_max_levels(bounded_ml(ml, "max_levels", d.max_levels)?)
                .with_boundary_band(bounded_ml(ml, "boundary_band", d.boundary_band)?),
        );
    }
    if let Some(w) = obj.get("weights") {
        if !matches!(w, Json::Obj(_)) {
            return Err(ProtoError::new(
                "protocol",
                "config.weights must be an object",
            ));
        }
        let d = GainWeights::default();
        out.search.weights = GainWeights {
            merit: weight(w, "merit", d.merit)?,
            io_penalty: weight(w, "io_penalty", d.io_penalty)?,
            affinity: weight(w, "affinity", d.affinity)?,
            growth: weight(w, "growth", d.growth)?,
            independence: weight(w, "independence", d.independence)?,
        };
    }
    Ok(out)
}

/// Parses the optional `vectors` / `seed` members of a `verify`
/// request, returning `(vectors, seed)`.
///
/// `vectors` defaults to 32 and is bounded by [`MAX_KNOB`] — a verify
/// request runs three evaluators per vector per ISE, so an unbounded
/// count would be a cheap way to pin a worker. `seed` is any u64
/// (defaults to the harness default) so CI can reproduce a failure.
pub fn parse_verify_params(request: &Json) -> Result<(usize, u64), ProtoError> {
    let vectors = match request.get("vectors") {
        None => 32,
        Some(v) => match v.as_u64() {
            Some(n) if (1..=MAX_KNOB).contains(&n) => n as usize,
            _ => {
                return Err(ProtoError::new(
                    "protocol",
                    format!("vectors must be an integer in 1..={MAX_KNOB}"),
                ))
            }
        },
    };
    let seed = match request.get("seed") {
        None => 0x5eed,
        Some(v) => v.as_u64().ok_or_else(|| {
            ProtoError::new("protocol", "seed must be an unsigned 64-bit integer")
        })?,
    };
    Ok((vectors, seed))
}

/// Formats an application hash the way the protocol exchanges it.
pub fn format_hash(hash: u64) -> String {
    format!("{hash:016x}")
}

/// Parses a hash produced by [`format_hash`].
pub fn parse_hash(s: &str) -> Result<u64, ProtoError> {
    if s.len() == 16 {
        if let Ok(h) = u64::from_str_radix(s, 16) {
            return Ok(h);
        }
    }
    Err(ProtoError::new(
        "protocol",
        format!("{s:?} is not a 16-hex-digit app hash"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn default_when_config_absent() {
        let cfg = parse_config(None).unwrap();
        assert_eq!(cfg, RequestConfig::default());
        assert_eq!(cfg.ise, IseConfig::paper_default());
    }

    #[test]
    fn full_config_round_trip() {
        let j = json::parse(
            r#"{"io":[6,3],"max_ises":8,"reuse":false,"threads":4,
                "portfolio_threads":2,"max_passes":2,"restarts":1,
                "weights":{"merit":2.0,"io_penalty":10.0}}"#,
        )
        .unwrap();
        let cfg = parse_config(Some(&j)).unwrap();
        assert_eq!(cfg.ise.io, IoConstraints::new(6, 3));
        assert_eq!(cfg.ise.max_ises, 8);
        assert!(!cfg.ise.reuse_matching);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.portfolio_threads, 2);
        assert_eq!(cfg.search.max_passes, 2);
        assert_eq!(cfg.search.restarts, 1);
        assert_eq!(cfg.search.weights.merit, 2.0);
        assert_eq!(cfg.search.weights.io_penalty, 10.0);
        // unspecified weights keep their defaults
        assert_eq!(cfg.search.weights.affinity, GainWeights::default().affinity);
        // absent portfolio knob defaults to a sequential portfolio
        let j = json::parse(r#"{"threads":8}"#).unwrap();
        assert_eq!(parse_config(Some(&j)).unwrap().portfolio_threads, 1);
    }

    #[test]
    fn multilevel_config_parses_with_defaults() {
        // Absent → multilevel stays off.
        let j = json::parse(r#"{"threads":2}"#).unwrap();
        assert_eq!(parse_config(Some(&j)).unwrap().search.multilevel, None);
        // Empty object → on, library defaults.
        let j = json::parse(r#"{"multilevel":{}}"#).unwrap();
        assert_eq!(
            parse_config(Some(&j)).unwrap().search.multilevel,
            Some(MultilevelConfig::default())
        );
        // Partial object → unspecified members keep their defaults.
        let j = json::parse(r#"{"multilevel":{"min_coarse_ops":256,"boundary_band":3}}"#).unwrap();
        let ml = parse_config(Some(&j)).unwrap().search.multilevel.unwrap();
        assert_eq!(ml.min_coarse_ops, 256);
        assert_eq!(ml.max_levels, MultilevelConfig::default().max_levels);
        assert_eq!(ml.boundary_band, 3);
    }

    #[test]
    fn hostile_multilevel_configs_are_structured_errors() {
        let cases = [
            r#"{"multilevel":true}"#,
            r#"{"multilevel":"on"}"#,
            r#"{"multilevel":[512]}"#,
            r#"{"multilevel":{"min_coarse_ops":0}}"#,
            r#"{"multilevel":{"min_coarse_ops":1e9}}"#,
            r#"{"multilevel":{"min_coarse_ops":"big"}}"#,
            r#"{"multilevel":{"min_coarse_ops":3.5}}"#,
            r#"{"multilevel":{"min_coarse_ops":4294967296}}"#,
            r#"{"multilevel":{"max_levels":0}}"#,
            r#"{"multilevel":{"max_levels":-1}}"#,
            r#"{"multilevel":{"boundary_band":0}}"#,
            r#"{"multilevel":{"boundary_band":99999999}}"#,
        ];
        for text in cases {
            let j = json::parse(text).unwrap();
            let err = parse_config(Some(&j)).unwrap_err();
            assert_eq!(err.kind, "protocol", "{text}");
            if text.contains(':') && text.contains("coarse") {
                assert!(err.message.contains("config.multilevel.min_coarse_ops"));
            }
        }
    }

    #[test]
    fn hostile_configs_are_structured_errors() {
        // Each of these would panic or spin somewhere in the library if
        // passed through unchecked (IoConstraints::new asserts non-zero;
        // huge knobs would pin a worker).
        let cases = [
            r#"{"io":[0,2]}"#,
            r#"{"io":[4]}"#,
            r#"{"io":"wide"}"#,
            r#"{"io":[4,-2]}"#,
            r#"{"max_ises":0}"#,
            r#"{"threads":1e9}"#,
            r#"{"portfolio_threads":0}"#,
            r#"{"portfolio_threads":-4}"#,
            r#"{"portfolio_threads":1e9}"#,
            r#"{"portfolio_threads":"many"}"#,
            r#"{"portfolio_threads":4294967296}"#,
            r#"{"portfolio_threads":3.5}"#,
            // individually legal, jointly a thread bomb
            r#"{"threads":4096,"portfolio_threads":4096}"#,
            r#"{"threads":128,"portfolio_threads":64}"#,
            r#"{"max_passes":2.5}"#,
            r#"{"restarts":99999999}"#,
            r#"{"reuse":"yes"}"#,
            r#"{"weights":{"merit":"big"}}"#,
            r#"{"weights":[1,2,3]}"#,
        ];
        for text in cases {
            let j = json::parse(text).unwrap();
            let err = parse_config(Some(&j)).unwrap_err();
            assert_eq!(err.kind, "protocol", "{text}");
        }
        // NaN weights are *accepted* — the library is NaN-safe and the
        // daemon must not be the layer that decides they are wrong.
        let j = json::parse(r#"{"weights":{"merit":null}}"#).unwrap();
        assert!(parse_config(Some(&j)).is_err(), "null is not a number");
    }

    #[test]
    fn verify_params_bounds() {
        let ok = json::parse(r#"{"op":"verify","vectors":64,"seed":7}"#).unwrap();
        assert_eq!(parse_verify_params(&ok).unwrap(), (64, 7));
        let defaults = json::parse(r#"{"op":"verify"}"#).unwrap();
        assert_eq!(parse_verify_params(&defaults).unwrap(), (32, 0x5eed));
        for text in [
            r#"{"vectors":0}"#,
            r#"{"vectors":-1}"#,
            r#"{"vectors":1e9}"#,
            r#"{"vectors":"lots"}"#,
            r#"{"vectors":2.5}"#,
            r#"{"vectors":4097}"#,
            r#"{"seed":"abc"}"#,
            r#"{"seed":-1}"#,
            r#"{"seed":1.5}"#,
        ] {
            let j = json::parse(text).unwrap();
            let err = parse_verify_params(&j).unwrap_err();
            assert_eq!(err.kind, "protocol", "{text}");
        }
    }

    #[test]
    fn hash_round_trip() {
        let h = 0x0123_4567_89ab_cdefu64;
        assert_eq!(parse_hash(&format_hash(h)).unwrap(), h);
        assert!(parse_hash("xyz").is_err());
        assert!(parse_hash("123").is_err());
        assert!(parse_hash("00112233445566778").is_err());
    }
}
