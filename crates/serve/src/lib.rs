//! The ISE service front-end: `ised`, a long-lived daemon that turns the
//! batch pipeline (kernel in, ISEs out) into an always-on service —
//! the ROADMAP's serve-at-scale groundwork.
//!
//! Clients speak newline-delimited JSON over TCP (see [`proto`] for the
//! full request/response table): submit a program in the text IR of
//! [`isegen_ir::text`], request ISE selection under any
//! [`isegen_core::SearchConfig`] / port budget, and fetch the
//! synthesizable Verilog, netlist shapes and area estimates of the
//! resulting AFUs.
//!
//! What makes it a service rather than a CLI in a loop:
//!
//! * **Per-block context caching** ([`ServeCache`]): the O(V·E/64)
//!   search precomputation ([`isegen_core::ContextData`]) of every
//!   submitted block stays resident, LRU-bounded, keyed by the hash of
//!   the canonical IR text; repeated selections are memoised per
//!   `(application, configuration)`. Hit/miss/eviction counters are one
//!   `stats` request away.
//! * **Concurrent serving** ([`Server`]): one scoped worker thread per
//!   connection over the shared cache, reusing the batched driver for
//!   multi-threaded selection when a request asks for it.
//! * **Panic-proof request path**: hostile input — malformed JSON,
//!   truncated IR, zero port budgets, NaN weights, unknown hashes,
//!   megabyte lines — produces structured error responses; a
//!   `catch_unwind` backstop keeps even a bug from killing the
//!   connection. Fuzzed in `tests/serve_roundtrip.rs`.
//!
//! # In-process example
//!
//! ```
//! use isegen_serve::{Server, ServerConfig};
//! use std::io::{BufRead, BufReader, Write};
//!
//! # fn main() -> std::io::Result<()> {
//! let server = Server::bind(
//!     "127.0.0.1:0",
//!     ServerConfig { verbose: false, ..ServerConfig::default() },
//! )?;
//! let addr = server.local_addr();
//! std::thread::scope(|scope| -> std::io::Result<()> {
//!     let handle = scope.spawn(|| server.run());
//!     let mut conn = std::net::TcpStream::connect(addr)?;
//!     writeln!(conn, r#"{{"op":"ping"}}"#)?;
//!     writeln!(conn, r#"{{"op":"shutdown"}}"#)?;
//!     let mut lines = BufReader::new(conn).lines();
//!     assert!(lines.next().unwrap()?.contains("pong"));
//!     handle.join().expect("server thread")?;
//!     Ok(())
//! })?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod disk;
pub mod fleet;
pub mod json;
pub mod proto;
mod server;
mod service;
pub mod wire;

pub use cache::{AppEntry, CacheCounters, DiskCounters, SelectionKey, ServeCache, SubmitError};
pub use proto::{ProtoError, RequestConfig};
pub use server::{Server, ServerConfig};
pub use service::Service;
pub use wire::{Framing, WireLimits, MAX_FRAME_BYTES, MAX_LINE_BYTES};
