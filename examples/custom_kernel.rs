//! Bring your own kernel: build a DFG with the builder API, sweep the
//! port budget, and export the chosen cut as Graphviz DOT.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use isegen::prelude::*;

/// An unrolled IIR biquad section (Direct Form I): the kind of loop body
/// a DSP engineer would hand to an ISE generator.
fn biquad() -> Result<Application, isegen::ir::BuildError> {
    let mut b = BlockBuilder::new("biquad").frequency(48_000);
    let x0 = b.input("x[n]");
    let x1 = b.input("x[n-1]");
    let x2 = b.input("x[n-2]");
    let y1 = b.input("y[n-1]");
    let y2 = b.input("y[n-2]");
    let (b0, b1, b2) = (b.input("b0"), b.input("b1"), b.input("b2"));
    let (a1, a2) = (b.input("a1"), b.input("a2"));
    let shift = b.input("q");

    let t0 = b.op(Opcode::Mul, &[b0, x0])?;
    let t1 = b.op(Opcode::Mul, &[b1, x1])?;
    let t2 = b.op(Opcode::Mul, &[b2, x2])?;
    let t3 = b.op(Opcode::Mul, &[a1, y1])?;
    let t4 = b.op(Opcode::Mul, &[a2, y2])?;
    let s0 = b.op(Opcode::Add, &[t0, t1])?;
    let s1 = b.op(Opcode::Add, &[s0, t2])?;
    let s2 = b.op(Opcode::Sub, &[s1, t3])?;
    let s3 = b.op(Opcode::Sub, &[s2, t4])?;
    let y = b.op(Opcode::Sar, &[s3, shift])?;
    b.live_out(y)?;

    let mut app = Application::new("custom_kernel");
    app.push_block(b.build()?);
    Ok(app)
}

fn main() -> Result<(), isegen::ir::BuildError> {
    let app = biquad()?;
    let model = LatencyModel::paper_default();
    let block = &app.blocks()[0];
    println!(
        "biquad: {} operations, {} cycles/iteration in software",
        block.operation_count(),
        block.software_latency(&model)
    );

    for (i, o) in [(2u32, 1u32), (4, 1), (4, 2), (6, 2), (8, 2)] {
        let io = IoConstraints::new(i, o);
        let config = IseConfig {
            io,
            max_ises: 1,
            reuse_matching: false,
        };
        let sel = Generator::new(config).run(&app, &model);
        match sel.ises.first() {
            Some(ise) => println!(
                "io {io}: ISE with {} ops saves {} cycles/iter -> speedup {:.3}",
                ise.cut.nodes().len(),
                ise.saved_per_execution,
                sel.speedup()
            ),
            None => println!("io {io}: no profitable ISE"),
        }
    }

    // Render the widest cut for inspection (pipe into `dot -Tsvg`).
    let config = IseConfig {
        io: IoConstraints::new(8, 2),
        max_ises: 1,
        reuse_matching: false,
    };
    let sel = Generator::new(config).run(&app, &model);
    if let Some(ise) = sel.ises.first() {
        println!("\nGraphviz DOT of the (8,2) cut:\n");
        println!("{}", block.to_dot(Some(ise.cut.nodes())));
    }
    Ok(())
}
