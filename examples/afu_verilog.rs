//! End-to-end deployment: run ISEGEN on a workload, generate the AFU's
//! synthesizable Verilog, and sanity-simulate the datapath against the
//! software semantics.
//!
//! ```sh
//! cargo run --release --example afu_verilog [workload]
//! ```

use isegen::prelude::*;
use isegen::rtl::{AfuLibrary, Netlist};
use isegen::workloads::workload_by_name;
use std::collections::BTreeMap;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fft00".to_string());
    let Some(spec) = workload_by_name(&name) else {
        eprintln!("unknown workload {name}; try fft00, autcor00, aes, ...");
        std::process::exit(1);
    };
    let app = spec.application();
    let model = LatencyModel::paper_default();
    let config = IseConfig {
        io: IoConstraints::new(4, 2),
        max_ises: 4,
        reuse_matching: true,
    };
    let selection = Generator::new(config).run(&app, &model);
    let afu = AfuLibrary::from_selection(&app, &model, &selection)
        .expect("driver cuts are always AFU-eligible");

    // Smoke-simulate each instruction's datapath on a couple of vectors.
    for (ise, inst) in selection.ises.iter().zip(afu.instructions()) {
        let block = &app.blocks()[ise.block_index];
        let netlist = Netlist::from_cut(block, ise.cut.nodes()).expect("eligible");
        let mut inputs = BTreeMap::new();
        for (id, op) in block.dag().nodes() {
            if op.opcode() == Opcode::Input {
                inputs.insert(id, id.index() as u32 * 2654435761 % 1000);
            }
        }
        let mut memory = BTreeMap::new();
        let values =
            isegen::ir::interp::execute(block, &inputs, &mut memory).expect("all inputs bound");
        let ports: Vec<u32> = netlist
            .input_nodes()
            .iter()
            .map(|p| values[p.index()])
            .collect();
        let out = netlist.evaluate(&ports).expect("port vector matches");
        for (port, &cell) in netlist.output_cells().iter().enumerate() {
            let node = netlist.cell_nodes()[cell as usize];
            assert_eq!(out[port], values[node.index()], "golden-model mismatch");
        }
        // Third leg of the oracle: execute the emitted Verilog text.
        let module = isegen::rtl::sim::parse_module(&inst.verilog).expect("emitted text parses");
        let sim_out = module.evaluate(&ports).expect("simulates");
        assert_eq!(sim_out, out, "emitted Verilog diverged from the netlist");
        eprintln!(
            "verified {}: {} ops, {:.0} gates, {} instance(s)",
            inst.name,
            inst.netlist.cell_count(),
            inst.gates,
            inst.instance_count
        );
    }
    eprintln!(
        "speedup {:.3}x, AFU total {:.0} NAND2-equivalent gates",
        selection.speedup(),
        afu.total_gates()
    );

    // The deliverable: the Verilog on stdout (pipe into a synthesis flow).
    println!("{}", afu.emit_verilog());
}
