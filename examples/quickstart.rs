//! Quickstart: describe a kernel, run ISEGEN, inspect the generated ISE.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use isegen::prelude::*;

fn main() -> Result<(), isegen::ir::BuildError> {
    // A small DSP-ish kernel: two multiply-accumulate lanes merged by a
    // saturating select.
    let mut b = BlockBuilder::new("kernel").frequency(100_000);
    let (x0, y0) = (b.input("x0"), b.input("y0"));
    let (x1, y1) = (b.input("x1"), b.input("y1"));
    let limit = b.input("limit");
    let p0 = b.op(Opcode::Mul, &[x0, y0])?;
    let p1 = b.op(Opcode::Mul, &[x1, y1])?;
    let sum = b.op(Opcode::Add, &[p0, p1])?;
    let over = b.op(Opcode::Lt, &[limit, sum])?;
    let clamped = b.op(Opcode::Select, &[over, limit, sum])?;
    b.live_out(clamped)?;

    let mut app = Application::new("quickstart");
    app.push_block(b.build()?);

    let model = LatencyModel::paper_default();
    let config = IseConfig {
        io: IoConstraints::new(4, 2),
        max_ises: 2,
        reuse_matching: true,
    };
    let selection = Generator::new(config).run(&app, &model);

    println!("application: {}", app.name());
    println!(
        "total software latency: {} cycles",
        selection.total_sw_cycles
    );
    for (k, ise) in selection.ises.iter().enumerate() {
        let block = &app.blocks()[ise.block_index];
        println!(
            "ISE{}: {} ops, {} inputs, {} outputs, saves {} cycles/exec, {} instance(s)",
            k + 1,
            ise.cut.nodes().len(),
            ise.cut.input_count(),
            ise.cut.output_count(),
            ise.saved_per_execution,
            ise.instances.len(),
        );
        let ops: Vec<String> = ise
            .cut
            .nodes()
            .iter()
            .map(|v| block.opcode(v).to_string())
            .collect();
        println!("      operations: {}", ops.join(" "));
    }
    println!("speedup: {:.3}x", selection.speedup());
    Ok(())
}
