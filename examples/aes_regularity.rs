//! The paper's AES study in miniature: ISEGEN exploits the cipher's
//! regular structure by matching each generated ISE across the whole
//! 696-operation round data-flow.
//!
//! ```sh
//! cargo run --release --example aes_regularity
//! ```

use isegen::prelude::*;
use isegen::workloads::aes;

fn main() {
    let model = LatencyModel::paper_default();
    let app = aes();
    let kernel = app.critical_block().expect("aes has blocks");
    println!(
        "AES critical block: {} operations, {} DFG nodes",
        kernel.operation_count(),
        kernel.node_count()
    );

    for (max_inputs, max_outputs) in IoConstraints::AES_SWEEP {
        let io = IoConstraints::new(max_inputs, max_outputs);
        let config = IseConfig {
            io,
            max_ises: 4,
            reuse_matching: true,
        };
        let with_reuse = Generator::new(config).run(&app, &model);
        let without = Generator::new(IseConfig {
            reuse_matching: false,
            ..config
        })
        .run(&app, &model);
        let cuts: Vec<String> = with_reuse
            .ises
            .iter()
            .map(|i| format!("{}x{}op", i.instances.len(), i.cut.nodes().len()))
            .collect();
        println!(
            "io {io}: speedup {:.3} with reuse ({}) vs {:.3} without",
            with_reuse.speedup(),
            cuts.join(", "),
            without.speedup()
        );
    }
    println!();
    println!("One AFU per recurring cut covers the DFG; without reuse the");
    println!("same cuts accelerate a single site each — the regularity gap");
    println!("the paper reports against the genetic formulation.");
}
