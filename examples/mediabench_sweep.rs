//! Runs all four algorithms over the MediaBench/EEMBC suite (the Fig. 4
//! comparison) and prints speedup + runtime per benchmark.
//!
//! ```sh
//! cargo run --release --example mediabench_sweep
//! ```

use isegen::eval::{run_algorithm, Algorithm, HarnessConfig};
use isegen::ir::LatencyModel;
use isegen::workloads::mediabench_eembc_suite;

fn main() {
    let model = LatencyModel::paper_default();
    let config = HarnessConfig::paper_default();
    println!(
        "{:<18} {:>10} {:>12} {:>12}",
        "benchmark", "algorithm", "speedup", "runtime_us"
    );
    for spec in mediabench_eembc_suite() {
        let app = spec.application();
        for alg in Algorithm::ALL {
            let out = run_algorithm(alg, &app, &model, &config);
            println!(
                "{:<18} {:>10} {:>12} {:>12}",
                format!("{}({})", spec.name, spec.kernel_ops),
                alg.to_string(),
                out.speedup_cell(),
                out.runtime_us()
            );
        }
    }
}
